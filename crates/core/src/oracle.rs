//! The clairvoyant single-speed bound.
//!
//! Paper §3.3: "a clairvoyant algorithm can achieve minimal energy
//! consumption for uniprocessor systems by running all tasks at a single
//! speed setting if the actual running time of every task is known" — this
//! intuition motivates the speculative schemes.
//!
//! [`OraclePolicy`] realizes that algorithm: given the *realization* (which
//! no on-line scheme may peek at), it computes the application's actual
//! makespan at full speed and runs everything at the single slowest speed
//! that still meets the deadline. Because the engine's schedule scales
//! exactly with a uniform slowdown (every dispatch-time expression is a
//! max/plus over scaled durations), the stretched schedule finishes at
//! `makespan / s ≤ D`.
//!
//! Two caveats make this a *reference point* rather than a provable
//! optimum:
//!
//! * on multiprocessors, per-processor idle intervals could in principle
//!   be exploited further;
//! * on **discrete** level tables the single speed is rounded *up* a whole
//!   level, while an on-line scheme may mix adjacent levels across tasks —
//!   a convex combination the single-speed clairvoyant cannot express, so
//!   on coarse tables (e.g. XScale) GSS can genuinely *beat* this bound.
//!   On the continuous model the bound is tight and no scheme beats it.
//!
//! Experiments report each scheme's *gap* to this reference.

use andor_graph::{AndOrGraph, NodeId, SectionGraph};
use dvfs_power::{OperatingPoint, Overheads, ProcessorModel};
use mp_sim::{
    DispatchCtx, DispatchOrder, MaxSpeed, Policy, Realization, SimConfig, SimError, Simulator,
    SpeedDecision,
};

/// A clairvoyant single-speed policy for one specific realization.
pub struct OraclePolicy {
    point: OperatingPoint,
    makespan_full_speed: f64,
}

impl OraclePolicy {
    /// Builds the oracle for `real`: measures the realization's makespan at
    /// full speed (overhead-free — the clairvoyant computes off-line) and
    /// picks the slowest level finishing by `deadline`, reserving one
    /// voltage transition for entering the chosen speed.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the full-speed probe run (e.g. a
    /// realization that does not resolve a reachable OR node).
    #[allow(clippy::too_many_arguments)] // mirrors the engine's parameter set
    pub fn for_realization(
        g: &AndOrGraph,
        sections: &SectionGraph,
        dispatch: &DispatchOrder,
        model: &ProcessorModel,
        num_procs: usize,
        deadline: f64,
        overheads: Overheads,
        real: &Realization,
    ) -> Result<Self, SimError> {
        let probe_cfg = SimConfig {
            num_procs,
            deadline,
            idle_fraction: 0.0,
            static_fraction: 0.0,
            overheads: Overheads::none(),
            record_trace: false,
        };
        let probe = Simulator::new(g, sections, dispatch, model, probe_cfg);
        let makespan = probe.run(&mut MaxSpeed, real)?.finish_time;
        let budget = (deadline - overheads.transition_time_ms).max(f64::MIN_POSITIVE);
        let desired = if makespan <= 0.0 {
            model.min_speed()
        } else {
            makespan / budget
        };
        Ok(Self {
            point: model.quantize_up(desired),
            makespan_full_speed: makespan,
        })
    }

    /// The single operating point chosen.
    pub fn point(&self) -> OperatingPoint {
        self.point
    }

    /// The realization's makespan at full speed (ms).
    pub fn makespan_full_speed(&self) -> f64 {
        self.makespan_full_speed
    }
}

impl Policy for OraclePolicy {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn speed_for(&mut self, _task: NodeId, _ctx: &DispatchCtx) -> SpeedDecision {
        SpeedDecision {
            point: self.point,
            // Clairvoyant decisions are made off-line: no PMP cost.
            ran_pmp: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Setup;
    use crate::policies::Scheme;
    use andor_graph::Segment;
    use mp_sim::ExecTimeModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> Setup {
        let app = Segment::seq([
            Segment::task("A", 6.0, 3.0),
            Segment::par([Segment::task("B", 5.0, 2.0), Segment::task("C", 7.0, 3.0)]),
            Segment::branch([
                (0.4, Segment::task("D", 9.0, 4.0)),
                (0.6, Segment::task("E", 3.0, 2.0)),
            ]),
        ])
        .lower()
        .expect("fixture app lowers");
        Setup::for_load(app, ProcessorModel::transmeta5400(), 2, 0.6).expect("feasible load")
    }

    fn oracle_for(s: &Setup, real: &Realization) -> OraclePolicy {
        OraclePolicy::for_realization(
            &s.graph,
            &s.sections,
            &s.plan.dispatch,
            &s.model,
            s.plan.num_procs,
            s.plan.deadline,
            s.overheads,
            real,
        )
        .expect("probe run succeeds")
    }

    #[test]
    fn oracle_meets_deadline_on_every_draw() {
        let s = setup();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
            let mut oracle = oracle_for(&s, &real);
            let res = s
                .simulator(false)
                .run(&mut oracle, &real)
                .expect("run succeeds");
            assert!(
                !res.missed_deadline,
                "oracle missed: {} > {}",
                res.finish_time, res.deadline
            );
        }
    }

    /// On the continuous model (no rounding) the clairvoyant single speed
    /// is a true lower bound.
    #[test]
    fn oracle_lower_bounds_online_schemes_on_average() {
        let app = Segment::seq([
            Segment::task("A", 6.0, 3.0),
            Segment::par([Segment::task("B", 5.0, 2.0), Segment::task("C", 7.0, 3.0)]),
            Segment::branch([
                (0.4, Segment::task("D", 9.0, 4.0)),
                (0.6, Segment::task("E", 3.0, 2.0)),
            ]),
        ])
        .lower()
        .expect("fixture app lowers");
        let model = ProcessorModel::continuous(0.05).expect("valid continuous model");
        let s = Setup::for_load(app, model, 2, 0.6).expect("feasible load");
        let mut rng = StdRng::seed_from_u64(9);
        let mut e_oracle = 0.0;
        let mut e_schemes = vec![0.0_f64; Scheme::ALL.len()];
        for _ in 0..300 {
            let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
            let mut oracle = oracle_for(&s, &real);
            e_oracle += s
                .simulator(false)
                .run(&mut oracle, &real)
                .expect("run succeeds")
                .total_energy();
            for (i, scheme) in Scheme::ALL.iter().enumerate() {
                e_schemes[i] += s.run(*scheme, &real).expect("run succeeds").total_energy();
            }
        }
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            assert!(
                e_oracle <= e_schemes[i] * 1.001,
                "{} beat the clairvoyant bound: {} vs {}",
                scheme.name(),
                e_schemes[i],
                e_oracle
            );
        }
    }

    #[test]
    fn oracle_uses_single_speed_and_no_pmps() {
        let s = setup();
        let mut rng = StdRng::seed_from_u64(14);
        let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let mut oracle = oracle_for(&s, &real);
        let res = s
            .simulator(true)
            .run(&mut oracle, &real)
            .expect("run succeeds");
        let speeds: std::collections::BTreeSet<u64> = res
            .trace
            .as_ref()
            .expect("trace recorded")
            .iter()
            .map(|e| (e.speed * 1e9) as u64)
            .collect();
        assert_eq!(speeds.len(), 1, "one speed for the whole run");
        // At most one transition per processor (entering the speed).
        assert!(res.energy.speed_changes() <= s.plan.num_procs as u64);
    }

    #[test]
    fn oracle_stretches_to_fill_deadline() {
        let s = setup();
        let mut rng = StdRng::seed_from_u64(21);
        let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let oracle = oracle_for(&s, &real);
        // The chosen speed is the quantization of makespan/deadline.
        let ideal =
            oracle.makespan_full_speed() / (s.plan.deadline - s.overheads.transition_time_ms);
        assert!(oracle.point().speed >= ideal - 1e-12);
        // ...and no more than one level above it.
        let above = s.model.quantize_up(ideal).speed;
        assert_eq!(oracle.point().speed, above);
    }
}
