//! Property-based invariants of the off-line phase.

use andor_graph::{SectionGraph, Segment};
use pas_core::OfflinePlan;
use proptest::prelude::*;

/// Random structured apps (Par arms branch-free by design).
fn arb_segment(depth: u32, allow_branch: bool) -> BoxedStrategy<Segment> {
    let task = (1u32..500, 1u32..=100).prop_map(|(w, a_pct)| {
        let wcet = w as f64 / 10.0;
        Segment::task("t", wcet, wcet * a_pct as f64 / 100.0)
    });
    if depth == 0 {
        return task.boxed();
    }
    let seq = proptest::collection::vec(arb_segment(depth - 1, allow_branch), 1..4)
        .prop_map(Segment::Seq);
    let par = proptest::collection::vec(arb_segment(depth - 1, false), 2..4).prop_map(Segment::Par);
    if allow_branch {
        let branch = proptest::collection::vec((1u32..100, arb_segment(depth - 1, true)), 2..3)
            .prop_map(|arms| {
                let total: u32 = arms.iter().map(|(w, _)| w).sum();
                Segment::Branch(
                    arms.into_iter()
                        .map(|(w, s)| (w as f64 / total as f64, s))
                        .collect(),
                )
            });
        prop_oneof![task, seq, par, branch].boxed()
    } else {
        prop_oneof![task, seq, par].boxed()
    }
}

fn instance() -> impl Strategy<Value = (andor_graph::AndOrGraph, SectionGraph, usize)> {
    (arb_segment(3, true), 1usize..5).prop_filter_map("lowers", |(s, m)| {
        let g = s.lower().ok()?;
        let sg = SectionGraph::build(&g).ok()?;
        Some((g, sg, m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `Ta <= Tw`, both positive. Adding a processor may *slightly*
    /// lengthen an LTF list schedule (Graham's scheduling anomaly — the
    /// longest-first order interacts with precedence), but never beyond
    /// Graham's bound: any list schedule is within `2 − 1/m` of optimal,
    /// so two list schedules of the same instance are within that factor
    /// of each other.
    #[test]
    fn canonical_lengths_are_sane((g, sg, m) in instance()) {
        let d = g.total_wcet() * 10.0 + 10.0;
        let plan_m = OfflinePlan::build(&g, &sg, m, d).unwrap();
        prop_assert!(plan_m.worst_total > 0.0);
        prop_assert!(plan_m.avg_total <= plan_m.worst_total + 1e-9);
        let plan_more = OfflinePlan::build(&g, &sg, m + 1, d).unwrap();
        let graham = 2.0 - 1.0 / m as f64;
        prop_assert!(
            plan_more.worst_total <= plan_m.worst_total * graham + 1e-9,
            "anomaly beyond Graham's bound: {} procs -> {} ms, {} procs -> {} ms",
            m,
            plan_m.worst_total,
            m + 1,
            plan_more.worst_total
        );
    }

    /// Tw never exceeds the serial bound (sum of all WCETs) and never
    /// undercuts the critical path.
    #[test]
    fn tw_bounded_by_serial_and_critical_path((g, sg, m) in instance()) {
        let d = g.total_wcet() * 10.0 + 10.0;
        let plan = OfflinePlan::build(&g, &sg, m, d).unwrap();
        let serial = g.total_wcet();
        prop_assert!(plan.worst_total <= serial + 1e-9);
        let profile = andor_graph::app_profile(&g, &sg);
        prop_assert!(
            plan.worst_total >= profile.worst_critical_path - 1e-9,
            "Tw {} below critical path {}",
            plan.worst_total,
            profile.worst_critical_path
        );
    }

    /// LSTs exist exactly for non-OR nodes, never exceed `D − wcet`, and
    /// follow the dispatch order within a section.
    #[test]
    fn lst_structure((g, sg, m) in instance()) {
        let d = g.total_wcet() * 4.0 + 10.0;
        let plan = OfflinePlan::build(&g, &sg, m, d).unwrap();
        for (id, node) in g.iter() {
            match plan.lst[id.index()] {
                Some(lst) => {
                    prop_assert!(!node.kind.is_or());
                    prop_assert!(lst <= d - node.kind.wcet() + 1e-9);
                }
                None => prop_assert!(node.kind.is_or()),
            }
        }
        for order in &plan.dispatch.per_section {
            for w in order.windows(2) {
                let a = plan.lst[w[0].index()].unwrap();
                let b = plan.lst[w[1].index()].unwrap();
                prop_assert!(a <= b + 1e-9, "LSTs must follow dispatch order");
            }
        }
    }

    /// The PMP branch statistics are consistent: a branch's worst remaining
    /// time is at least its average, and the root totals dominate the
    /// continuation stored at each top-level PMP.
    #[test]
    fn pmp_stats_consistent((g, sg, m) in instance()) {
        let d = g.total_wcet() * 10.0 + 10.0;
        let plan = OfflinePlan::build(&g, &sg, m, d).unwrap();
        for (key, tw) in &plan.branch_worst {
            let ta = plan.branch_avg[key];
            prop_assert!(ta <= tw + 1e-9, "Ta_k {ta} > Tw_k {tw}");
            prop_assert!(*tw <= plan.worst_total + 1e-9);
        }
    }

    /// Dispatch orders cover each section's nodes exactly once.
    #[test]
    fn dispatch_orders_cover_sections((g, sg, m) in instance()) {
        let d = g.total_wcet() * 10.0 + 10.0;
        let plan = OfflinePlan::build(&g, &sg, m, d).unwrap();
        prop_assert_eq!(plan.dispatch.per_section.len(), sg.len());
        for (sid, order) in plan.dispatch.per_section.iter().enumerate() {
            let section = &sg.sections()[sid];
            let mut a: Vec<_> = order.clone();
            let mut b: Vec<_> = section.nodes.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }

    /// The deadline scales linearly: doubling D doubles every LST residual
    /// (`D − LST` is deadline-independent).
    #[test]
    fn lst_residuals_deadline_invariant((g, sg, m) in instance()) {
        let d1 = g.total_wcet() * 4.0 + 10.0;
        let d2 = d1 * 2.0;
        let p1 = OfflinePlan::build(&g, &sg, m, d1).unwrap();
        let p2 = OfflinePlan::build(&g, &sg, m, d2).unwrap();
        for i in 0..g.len() {
            if let (Some(a), Some(b)) = (p1.lst[i], p2.lst[i]) {
                prop_assert!(((d1 - a) - (d2 - b)).abs() < 1e-9);
            }
        }
    }
}
