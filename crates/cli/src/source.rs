//! Resolving `--app` and `--model` specifications.

use crate::args::Args;
use andor_graph::AndOrGraph;
use dvfs_power::ProcessorModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::{synthetic_app, with_alpha, AtrParams};

/// Builds the application graph for `--app` (with the optional `--alpha`
/// override applied before lowering for the built-ins, or left as-is for
/// JSON files).
pub fn load_app(args: &Args) -> Result<AndOrGraph, String> {
    load_app_named(&args.app, args, true)
}

/// Like [`load_app`], but JSON workloads skip the eager `validate()` —
/// for callers that run the full `pas-analyze` check suite instead
/// (collecting *every* problem rather than failing on the first).
pub fn load_app_unvalidated(args: &Args) -> Result<AndOrGraph, String> {
    load_app_named(&args.app, args, false)
}

/// Builds one of the built-in workloads (`synthetic`, `video`, `atr`) by
/// name, honouring the `--alpha`/`--seed` overrides in `args`.
pub fn load_builtin_app(name: &str, args: &Args) -> Result<AndOrGraph, String> {
    match name {
        "synthetic" | "video" | "atr" => load_app_named(name, args, true),
        other => Err(format!("'{other}' is not a built-in workload")),
    }
}

fn load_app_named(name: &str, args: &Args, validate: bool) -> Result<AndOrGraph, String> {
    match name {
        "synthetic" => {
            let seg = match args.alpha {
                Some(a) => {
                    with_alpha(&synthetic_app(), a).map_err(|e| format!("synthetic app: {e}"))?
                }
                None => synthetic_app(),
            };
            seg.lower().map_err(|e| format!("synthetic app: {e}"))
        }
        "video" => {
            let params = workloads::VideoParams {
                alpha: args
                    .alpha
                    .unwrap_or(workloads::VideoParams::default().alpha),
                ..workloads::VideoParams::default()
            };
            params
                .build()
                .map_err(|e| format!("video params: {e}"))?
                .lower()
                .map_err(|e| format!("video app: {e}"))
        }
        "atr" => {
            let params = AtrParams {
                alpha: args.alpha.unwrap_or(AtrParams::default().alpha),
                ..AtrParams::default()
            };
            let mut rng = StdRng::seed_from_u64(args.seed);
            params
                .build_jittered(&mut rng)
                .map_err(|e| format!("atr params: {e}"))?
                .lower()
                .map_err(|e| format!("atr app: {e}"))
        }
        path => {
            if args.alpha.is_some() {
                return Err("--alpha applies only to the built-in workloads".into());
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let g: AndOrGraph =
                serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            if validate {
                g.validate()
                    .map_err(|e| format!("validating {path}: {e}"))?;
            }
            Ok(g)
        }
    }
}

/// Loads and validates a fault plan from a JSON file (the serde form of
/// [`mp_sim::FaultPlan`]).
pub fn load_fault_plan(path: &str) -> Result<mp_sim::FaultPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let plan: mp_sim::FaultPlan =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    plan.validate()
        .map_err(|e| format!("validating {path}: {e}"))?;
    Ok(plan)
}

/// Resolves the `--model` specification.
pub fn load_model(spec: &str) -> Result<ProcessorModel, String> {
    match spec {
        "transmeta" => Ok(ProcessorModel::transmeta5400()),
        "xscale" => Ok(ProcessorModel::xscale()),
        other => {
            if let Some(smin) = other.strip_prefix("continuous:") {
                let smin: f64 = smin
                    .parse()
                    .map_err(|_| format!("bad continuous smin: {smin}"))?;
                ProcessorModel::continuous(smin)
                    .ok_or_else(|| "continuous smin must be in (0, 1]".into())
            } else {
                Err(format!(
                    "unknown model '{other}' (transmeta|xscale|continuous:<smin>)"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Args, Command, SchemeArg};

    fn base_args(app: &str) -> Args {
        Args {
            command: Command::Inspect,
            app: app.into(),
            model: "transmeta".into(),
            procs: 2,
            load: None,
            deadline: None,
            scheme: SchemeArg::Scheme(pas_core::Scheme::Gss),
            seed: 1,
            reps: 10,
            alpha: None,
            gantt: false,
            out: None,
            fault_plan: None,
            format: "summary".into(),
            proc_filter: None,
            kinds: None,
            frames: None,
            carry: false,
            metrics: false,
            batch: None,
            check: false,
            update_baselines: false,
            listen: None,
            socket: None,
            watch: None,
            workers: 4,
            queue: 64,
            timeout_ms: 10_000,
            debug_faults: false,
            bench_dir: None,
            workloads: None,
            sources: Vec::new(),
            deny_warnings: false,
            against: Vec::new(),
            fix: false,
            bounds: false,
            profile: false,
            profile_out: None,
            log: None,
            log_level: "info".into(),
            crash_dir: None,
            trace_out: None,
        }
    }

    #[test]
    fn loads_builtins() {
        assert!(load_app(&base_args("synthetic")).is_ok());
        assert!(load_app(&base_args("atr")).is_ok());
        assert!(load_app(&base_args("video")).is_ok());
    }

    #[test]
    fn alpha_override_applies() {
        let mut a = base_args("synthetic");
        a.alpha = Some(0.4);
        let g = load_app(&a).unwrap();
        for (_, n) in g.iter() {
            if n.kind.is_computation() {
                assert!((n.kind.acet() - 0.4 * n.kind.wcet()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn missing_file_errors() {
        let err = load_app(&base_args("/nonexistent/x.json")).unwrap_err();
        assert!(err.contains("reading"), "{err}");
    }

    #[test]
    fn invalid_json_errors() {
        let dir = std::env::temp_dir().join("pas_cli_test_source");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = load_app(&base_args(path.to_str().unwrap())).unwrap_err();
        assert!(err.contains("parsing"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_plan_round_trip_and_corrupt_file() {
        let dir = std::env::temp_dir().join("pas_cli_test_fault_plan");
        let _ = std::fs::create_dir_all(&dir);
        // Round trip a valid plan.
        let good = dir.join("good.json");
        let plan = mp_sim::FaultPlan::overruns(0.2, 1.5, 9);
        std::fs::write(&good, serde_json::to_string(&plan).expect("serializes"))
            .expect("write fixture");
        let loaded = load_fault_plan(good.to_str().expect("utf-8 path")).expect("valid plan loads");
        assert_eq!(loaded, plan);
        // Corrupt JSON surfaces a one-line parse error.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"overrun_prob\": ").expect("write fixture");
        let err = load_fault_plan(bad.to_str().expect("utf-8 path"))
            .expect_err("corrupt JSON is rejected");
        assert!(err.contains("parsing"), "{err}");
        assert!(!err.contains('\n'), "one-line error: {err:?}");
        // Valid JSON, invalid semantics: validation error.
        let invalid = dir.join("invalid.json");
        let mut out_of_range = mp_sim::FaultPlan::none();
        out_of_range.overrun_prob = 2.0;
        std::fs::write(
            &invalid,
            serde_json::to_string(&out_of_range).expect("serializes"),
        )
        .expect("write fixture");
        let err = load_fault_plan(invalid.to_str().expect("utf-8 path"))
            .expect_err("out-of-range probability is rejected");
        assert!(err.contains("validating"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_specs() {
        assert_eq!(load_model("transmeta").unwrap().num_levels(), Some(16));
        assert_eq!(load_model("xscale").unwrap().num_levels(), Some(5));
        let c = load_model("continuous:0.25").unwrap();
        assert_eq!(c.num_levels(), None);
        assert!((c.min_speed() - 0.25).abs() < 1e-12);
        assert!(load_model("continuous:2.0").is_err());
        assert!(load_model("pentium").is_err());
    }
}
