//! Argument parsing for the `pas` binary.

/// The selected sub-command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Graph and scenario statistics.
    Inspect,
    /// Off-line phase report.
    Plan,
    /// Simulate one realization.
    Run,
    /// Monte-Carlo comparison of all schemes plus the clairvoyant bound.
    Compare,
    /// Graphviz DOT export to stdout.
    Dot,
    /// Exhaustive discrete optimum on a tiny instance (levels^tasks).
    Optimal,
    /// Save a workload's graph as JSON.
    Export,
    /// Simulate one realization and export its event stream (Chrome
    /// trace / JSONL / CSV metrics / text summary).
    Trace,
    /// Golden-workload regression harness: capture wall time, event
    /// counts and ledger slices; diff against committed baselines.
    Bench,
    /// Static analysis: graph well-formedness, platform/plan validity,
    /// fault-plan sanity and Theorem-1 feasibility, reported as stable
    /// `PAS0xxx` diagnostics.
    Check,
    /// Long-running plan/simulation daemon: newline-delimited JSON over
    /// TCP, a Unix socket, or a watched drop directory, behind a
    /// fault-isolated worker pool with a content-addressed plan cache.
    Serve,
}

/// Which scheme `pas run` simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeArg {
    /// One of the paper's six schemes.
    Scheme(pas_core::Scheme),
    /// The clairvoyant single-speed reference.
    Oracle,
}

/// Fully parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Sub-command.
    pub command: Command,
    /// Workload: `atr`, `synthetic`, or a JSON path.
    pub app: String,
    /// Platform spec: `transmeta`, `xscale`, `continuous:<smin>`.
    pub model: String,
    /// Processor count.
    pub procs: usize,
    /// Target load (mutually exclusive with `deadline`).
    pub load: Option<f64>,
    /// Explicit deadline in ms.
    pub deadline: Option<f64>,
    /// Scheme for `run`.
    pub scheme: SchemeArg,
    /// RNG seed.
    pub seed: u64,
    /// Replications for `compare`.
    pub reps: usize,
    /// Override the workload's α (ACET/WCET ratio).
    pub alpha: Option<f64>,
    /// Render an ASCII Gantt chart after `run`.
    pub gantt: bool,
    /// Output path for `export`.
    pub out: Option<String>,
    /// JSON file with a [`mp_sim::FaultPlan`] to inject during `run` or
    /// `trace`.
    pub fault_plan: Option<String>,
    /// Export format for `trace`: `chrome`, `jsonl`, `csv` or `summary`.
    pub format: String,
    /// Restrict `trace` exports to one processor's events.
    pub proc_filter: Option<usize>,
    /// Comma-separated event-kind filter for `trace` exports (see
    /// `pas_obs::EventKind::name`).
    pub kinds: Option<String>,
    /// Stream this many back-to-back frames through `trace` instead of a
    /// single run.
    pub frames: Option<usize>,
    /// Carry DVS state across streamed frames (with `--frames`).
    pub carry: bool,
    /// `compare`: additionally aggregate a [`pas_obs::MetricsRegistry`]
    /// across replications and cross-check engine counters.
    pub metrics: bool,
    /// `compare --metrics`: run this many realizations per scheme
    /// through the batched Monte-Carlo engine and report distribution
    /// summaries (energy/makespan quantiles, miss-rate CI, per-section
    /// ledger quantiles) instead of the sequential replication loop.
    pub batch: Option<usize>,
    /// `bench`: diff against the committed baselines, nonzero exit on
    /// drift.
    pub check: bool,
    /// `bench`: rewrite the committed baselines from this run.
    pub update_baselines: bool,
    /// `bench`: baseline directory (default `results/baselines`).
    pub bench_dir: Option<String>,
    /// `bench`: comma-separated golden-workload filter (`fig4,fig6`).
    pub workloads: Option<String>,
    /// `check`/`plan`: positional sources (workload/platform/fault-plan/
    /// plan files or builtin names). Empty means use the defaults
    /// (`--app`/`--model`).
    pub sources: Vec<String>,
    /// `check`: treat warnings as errors.
    pub deny_warnings: bool,
    /// `check`: reference sources a plan artifact is verified against
    /// (workload/platform specs, same classification as positionals).
    pub against: Vec<String>,
    /// `check`: write mechanically repaired workloads next to the input.
    pub fix: bool,
    /// `check`: derive symbolic `[best, worst]` energy/makespan bounds
    /// (`PAS06xx`) for every scheme over each workload/platform pair.
    pub bounds: bool,
    /// `serve`: TCP listen address (`host:port`).
    pub listen: Option<String>,
    /// `serve`: Unix-domain socket path.
    pub socket: Option<String>,
    /// `serve`: drop directory answered with `.response.json` files.
    pub watch: Option<String>,
    /// `serve`: worker threads in the pool.
    pub workers: usize,
    /// `serve`: bounded queue capacity (beyond it, requests shed).
    pub queue: usize,
    /// `serve`: default per-request deadline in ms.
    pub timeout_ms: u64,
    /// `serve`: enable the `debug-*` fault-injection request kinds.
    pub debug_faults: bool,
    /// `serve`: structured JSONL log destination (`stderr` or a path).
    pub log: Option<String>,
    /// `serve`: minimum level for `--log`
    /// (`trace|debug|info|warn|error`; default `info`).
    pub log_level: String,
    /// `serve`: directory for flight-recorder crash reports.
    pub crash_dir: Option<String>,
    /// `serve`: directory for per-request Chrome-trace files.
    pub trace_out: Option<String>,
    /// `plan`/`check`: profile the offline phase and print a span tree.
    pub profile: bool,
    /// `plan`/`check`: write the profile as Chrome trace JSON instead of
    /// printing the span tree (implies `--profile`).
    pub profile_out: Option<String>,
}

impl Args {
    /// Parses an argv slice (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter();
        let command = match it.next().map(String::as_str) {
            Some("inspect") => Command::Inspect,
            Some("plan") => Command::Plan,
            Some("run") => Command::Run,
            Some("compare") => Command::Compare,
            Some("dot") => Command::Dot,
            Some("optimal") => Command::Optimal,
            Some("export") => Command::Export,
            Some("trace") => Command::Trace,
            Some("bench") => Command::Bench,
            Some("check") => Command::Check,
            Some("serve") => Command::Serve,
            Some(other) => return Err(format!("unknown command '{other}'")),
            None => return Err("missing command".into()),
        };
        let mut parsed = Args {
            command,
            app: "synthetic".into(),
            model: "transmeta".into(),
            procs: 2,
            load: None,
            deadline: None,
            scheme: SchemeArg::Scheme(pas_core::Scheme::Gss),
            seed: 42,
            reps: 100,
            alpha: None,
            gantt: false,
            out: None,
            fault_plan: None,
            format: "summary".into(),
            proc_filter: None,
            kinds: None,
            frames: None,
            carry: false,
            metrics: false,
            batch: None,
            check: false,
            update_baselines: false,
            bench_dir: None,
            workloads: None,
            sources: Vec::new(),
            deny_warnings: false,
            against: Vec::new(),
            fix: false,
            bounds: false,
            listen: None,
            socket: None,
            watch: None,
            workers: 4,
            queue: 64,
            timeout_ms: 10_000,
            debug_faults: false,
            log: None,
            log_level: "info".into(),
            crash_dir: None,
            trace_out: None,
            profile: false,
            profile_out: None,
        };
        let mut in_against = false;
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--app" => parsed.app = value("--app")?.clone(),
                "--model" => parsed.model = value("--model")?.clone(),
                "--procs" => {
                    parsed.procs = parse_num(value("--procs")?, "--procs")?;
                    if parsed.procs == 0 {
                        return Err("--procs must be positive".into());
                    }
                }
                "--load" => {
                    let l: f64 = parse_num(value("--load")?, "--load")?;
                    if !(l > 0.0 && l <= 1.0) {
                        return Err("--load must be in (0, 1]".into());
                    }
                    parsed.load = Some(l);
                }
                "--deadline" => {
                    parsed.deadline = Some(parse_num(value("--deadline")?, "--deadline")?)
                }
                "--scheme" => parsed.scheme = parse_scheme(value("--scheme")?)?,
                "--seed" => parsed.seed = parse_num(value("--seed")?, "--seed")?,
                "--reps" => {
                    parsed.reps = parse_num(value("--reps")?, "--reps")?;
                    if parsed.reps == 0 {
                        return Err("--reps must be positive".into());
                    }
                }
                "--alpha" => {
                    let a: f64 = parse_num(value("--alpha")?, "--alpha")?;
                    if !(a > 0.0 && a <= 1.0) {
                        return Err("--alpha must be in (0, 1]".into());
                    }
                    parsed.alpha = Some(a);
                }
                "--gantt" => parsed.gantt = true,
                "--out" => parsed.out = Some(value("--out")?.clone()),
                "--fault-plan" => parsed.fault_plan = Some(value("--fault-plan")?.clone()),
                "--format" => parsed.format = value("--format")?.clone(),
                "--proc" => parsed.proc_filter = Some(parse_num(value("--proc")?, "--proc")?),
                "--kinds" => parsed.kinds = Some(value("--kinds")?.clone()),
                "--frames" => {
                    parsed.frames = Some(parse_num(value("--frames")?, "--frames")?);
                    if parsed.frames == Some(0) {
                        return Err("--frames must be positive".into());
                    }
                }
                "--carry" => parsed.carry = true,
                "--metrics" => parsed.metrics = true,
                "--batch" => {
                    parsed.batch = Some(parse_num(value("--batch")?, "--batch")?);
                    if parsed.batch == Some(0) {
                        return Err("--batch must be positive".into());
                    }
                }
                "--check" => parsed.check = true,
                "--update-baselines" => parsed.update_baselines = true,
                "--bench-dir" => parsed.bench_dir = Some(value("--bench-dir")?.clone()),
                "--workloads" => parsed.workloads = Some(value("--workloads")?.clone()),
                "--deny-warnings" => parsed.deny_warnings = true,
                "--against" => {
                    if parsed.command != Command::Check {
                        return Err("--against is a `check` flag".into());
                    }
                    let first = value("--against")?.clone();
                    if first.starts_with('-') {
                        return Err("--against needs a value".into());
                    }
                    parsed.against.push(first);
                    in_against = true;
                    continue;
                }
                "--fix" => parsed.fix = true,
                "--bounds" => parsed.bounds = true,
                "--listen" => parsed.listen = Some(value("--listen")?.clone()),
                "--socket" => parsed.socket = Some(value("--socket")?.clone()),
                "--watch" => parsed.watch = Some(value("--watch")?.clone()),
                "--workers" => {
                    parsed.workers = parse_num(value("--workers")?, "--workers")?;
                    if parsed.workers == 0 {
                        return Err("--workers must be positive".into());
                    }
                }
                "--queue" => {
                    parsed.queue = parse_num(value("--queue")?, "--queue")?;
                    if parsed.queue == 0 {
                        return Err("--queue must be positive".into());
                    }
                }
                "--timeout-ms" => {
                    parsed.timeout_ms = parse_num(value("--timeout-ms")?, "--timeout-ms")?;
                    if parsed.timeout_ms == 0 {
                        return Err("--timeout-ms must be positive".into());
                    }
                }
                "--debug-faults" => parsed.debug_faults = true,
                "--log" => parsed.log = Some(value("--log")?.clone()),
                "--log-level" => {
                    let level = value("--log-level")?.clone();
                    if pas_obs::log::Level::parse(&level).is_none() {
                        return Err(format!(
                            "bad value for --log-level: {level} (trace|debug|info|warn|error)"
                        ));
                    }
                    parsed.log_level = level;
                }
                "--crash-dir" => parsed.crash_dir = Some(value("--crash-dir")?.clone()),
                "--trace-out" => parsed.trace_out = Some(value("--trace-out")?.clone()),
                "--profile" => parsed.profile = true,
                "--profile-out" => {
                    parsed.profile_out = Some(value("--profile-out")?.clone());
                    parsed.profile = true;
                }
                other => {
                    // `check` and `plan` take positional sources; every
                    // other command rejects stray tokens. Bare tokens
                    // directly after `--against` extend the reference
                    // list rather than the checked sources.
                    let positional_ok = matches!(parsed.command, Command::Check | Command::Plan);
                    if positional_ok && !other.starts_with('-') {
                        if in_against {
                            parsed.against.push(other.to_string());
                            continue; // Stay in --against until the next flag.
                        }
                        parsed.sources.push(other.to_string());
                    } else {
                        return Err(format!("unknown flag '{other}'"));
                    }
                }
            }
            in_against = false;
        }
        if parsed.load.is_some() && parsed.deadline.is_some() {
            return Err("--load and --deadline are mutually exclusive".into());
        }
        if parsed.carry && parsed.frames.is_none() {
            return Err("--carry requires --frames".into());
        }
        if parsed.command == Command::Serve
            && parsed.listen.is_none()
            && parsed.socket.is_none()
            && parsed.watch.is_none()
        {
            return Err("serve needs at least one of --listen, --socket or --watch".into());
        }
        if parsed.profile && !matches!(parsed.command, Command::Plan | Command::Check) {
            return Err("--profile is a `plan`/`check` flag".into());
        }
        if parsed.bounds && parsed.command != Command::Check {
            return Err("--bounds is a `check` flag".into());
        }
        if parsed.batch.is_some() && !(parsed.command == Command::Compare && parsed.metrics) {
            return Err("--batch requires `compare --metrics`".into());
        }
        if parsed.command != Command::Serve {
            if parsed.log.is_some() || parsed.log_level != "info" {
                return Err("--log/--log-level are `serve` flags".into());
            }
            if parsed.crash_dir.is_some() {
                return Err("--crash-dir is a `serve` flag".into());
            }
            if parsed.trace_out.is_some() {
                return Err("--trace-out is a `serve` flag".into());
            }
        }
        Ok(parsed)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value for {flag}: {s}"))
}

fn parse_scheme(s: &str) -> Result<SchemeArg, String> {
    use pas_core::Scheme::*;
    Ok(match s.to_ascii_lowercase().as_str() {
        "npm" => SchemeArg::Scheme(Npm),
        "spm" => SchemeArg::Scheme(Spm),
        "gss" => SchemeArg::Scheme(Gss),
        "ss1" | "ss(1)" => SchemeArg::Scheme(Ss1),
        "ss2" | "ss(2)" => SchemeArg::Scheme(Ss2),
        "as" => SchemeArg::Scheme(As),
        "oracle" => SchemeArg::Oracle,
        other => return Err(format!("unknown scheme '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Args, String> {
        let v: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        Args::parse(&v)
    }

    #[test]
    fn defaults() {
        let a = parse(&["run"]).unwrap();
        assert_eq!(a.command, Command::Run);
        assert_eq!(a.app, "synthetic");
        assert_eq!(a.procs, 2);
        assert_eq!(a.seed, 42);
        assert!(!a.gantt);
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "compare",
            "--app",
            "atr",
            "--model",
            "xscale",
            "--procs",
            "4",
            "--load",
            "0.7",
            "--scheme",
            "ss2",
            "--seed",
            "9",
            "--reps",
            "50",
            "--alpha",
            "0.8",
            "--gantt",
            "--out",
            "x.json",
            "--fault-plan",
            "faults.json",
        ])
        .unwrap();
        assert_eq!(a.command, Command::Compare);
        assert_eq!(a.procs, 4);
        assert_eq!(a.load, Some(0.7));
        assert_eq!(a.scheme, SchemeArg::Scheme(pas_core::Scheme::Ss2));
        assert_eq!(a.reps, 50);
        assert_eq!(a.alpha, Some(0.8));
        assert!(a.gantt);
        assert_eq!(a.out.as_deref(), Some("x.json"));
        assert_eq!(a.fault_plan.as_deref(), Some("faults.json"));
    }

    #[test]
    fn load_and_deadline_conflict() {
        assert!(parse(&["plan", "--load", "0.5", "--deadline", "60"]).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["run", "--procs", "0"]).is_err());
        assert!(parse(&["run", "--load", "1.5"]).is_err());
        assert!(parse(&["run", "--alpha", "0"]).is_err());
        assert!(parse(&["run", "--reps", "x"]).is_err());
        assert!(parse(&["run", "--seed"]).is_err());
    }

    #[test]
    fn trace_flags() {
        let a = parse(&[
            "trace",
            "--format",
            "chrome",
            "--proc",
            "1",
            "--kinds",
            "dispatch,complete",
        ])
        .unwrap();
        assert_eq!(a.command, Command::Trace);
        assert_eq!(a.format, "chrome");
        assert_eq!(a.proc_filter, Some(1));
        assert_eq!(a.kinds.as_deref(), Some("dispatch,complete"));
        // The format defaults to the human-readable summary.
        assert_eq!(parse(&["trace"]).unwrap().format, "summary");
    }

    #[test]
    fn stream_flags() {
        let a = parse(&["trace", "--frames", "16", "--carry", "--format", "jsonl"]).unwrap();
        assert_eq!(a.frames, Some(16));
        assert!(a.carry);
        assert!(parse(&["trace", "--frames", "0"]).is_err());
        assert!(parse(&["trace", "--carry"]).is_err());
    }

    #[test]
    fn bench_flags() {
        let a = parse(&[
            "bench",
            "--check",
            "--bench-dir",
            "results/baselines",
            "--workloads",
            "fig4,fig6",
            "--reps",
            "2",
        ])
        .unwrap();
        assert_eq!(a.command, Command::Bench);
        assert!(a.check);
        assert!(!a.update_baselines);
        assert_eq!(a.bench_dir.as_deref(), Some("results/baselines"));
        assert_eq!(a.workloads.as_deref(), Some("fig4,fig6"));
        let b = parse(&["bench", "--update-baselines"]).unwrap();
        assert!(b.update_baselines);
    }

    #[test]
    fn compare_metrics_flag() {
        let a = parse(&["compare", "--metrics", "--reps", "5"]).unwrap();
        assert!(a.metrics);
        assert!(!parse(&["compare"]).unwrap().metrics);
    }

    #[test]
    fn compare_batch_flag() {
        let a = parse(&["compare", "--metrics", "--batch", "4096"]).unwrap();
        assert_eq!(a.batch, Some(4096));
        assert_eq!(parse(&["compare", "--metrics"]).unwrap().batch, None);
        // The batched engine rides on the metrics path of `compare`.
        assert!(parse(&["compare", "--batch", "64"]).is_err());
        assert!(parse(&["run", "--batch", "64"]).is_err());
        assert!(parse(&["compare", "--metrics", "--batch", "0"]).is_err());
        assert!(parse(&["compare", "--metrics", "--batch", "x"]).is_err());
    }

    #[test]
    fn check_flags() {
        let a = parse(&[
            "check",
            "w.json",
            "faults.json",
            "--deny-warnings",
            "--format",
            "json",
        ])
        .unwrap();
        assert_eq!(a.command, Command::Check);
        assert_eq!(
            a.sources,
            vec!["w.json".to_string(), "faults.json".to_string()]
        );
        assert!(a.deny_warnings);
        assert_eq!(a.format, "json");
        assert!(parse(&["check"]).unwrap().sources.is_empty());
        // Positional sources are only accepted by `check`.
        assert!(parse(&["run", "w.json"]).is_err());
    }

    #[test]
    fn against_collects_reference_sources() {
        let a = parse(&[
            "check",
            "p.json",
            "--against",
            "w.json",
            "xscale",
            "--deny-warnings",
        ])
        .unwrap();
        assert_eq!(a.sources, vec!["p.json".to_string()]);
        assert_eq!(a.against, vec!["w.json".to_string(), "xscale".to_string()]);
        assert!(a.deny_warnings);
        // --against needs at least one value and belongs to `check`.
        assert!(parse(&["check", "--against"]).is_err());
        assert!(parse(&["check", "--against", "--deny-warnings"]).is_err());
        assert!(parse(&["run", "--against", "w.json"]).is_err());
    }

    #[test]
    fn plan_takes_positional_sources() {
        let a = parse(&[
            "plan", "w.json", "xscale", "--scheme", "ss2", "--out", "p.json",
        ])
        .unwrap();
        assert_eq!(a.command, Command::Plan);
        assert_eq!(a.sources, vec!["w.json".to_string(), "xscale".to_string()]);
        assert_eq!(a.out.as_deref(), Some("p.json"));
    }

    #[test]
    fn bounds_flag() {
        let a = parse(&["check", "synthetic", "--bounds", "--format", "json"]).unwrap();
        assert!(a.bounds);
        assert_eq!(a.format, "json");
        assert!(!parse(&["check", "synthetic"]).unwrap().bounds);
        // Bounds derivation belongs to `check`.
        assert!(parse(&["run", "--bounds"]).is_err());
        assert!(parse(&["plan", "--bounds"]).is_err());
    }

    #[test]
    fn fix_flag() {
        let a = parse(&["check", "w.json", "--fix"]).unwrap();
        assert!(a.fix);
        assert!(!parse(&["check", "w.json"]).unwrap().fix);
    }

    #[test]
    fn serve_flags() {
        let a = parse(&[
            "serve",
            "--listen",
            "127.0.0.1:7453",
            "--workers",
            "8",
            "--queue",
            "128",
            "--timeout-ms",
            "2500",
            "--debug-faults",
        ])
        .unwrap();
        assert_eq!(a.command, Command::Serve);
        assert_eq!(a.listen.as_deref(), Some("127.0.0.1:7453"));
        assert_eq!(a.workers, 8);
        assert_eq!(a.queue, 128);
        assert_eq!(a.timeout_ms, 2500);
        assert!(a.debug_faults);
        // At least one endpoint is required, and sizes must be positive.
        assert!(parse(&["serve"]).is_err());
        assert!(parse(&["serve", "--listen", "x", "--workers", "0"]).is_err());
        assert!(parse(&["serve", "--listen", "x", "--queue", "0"]).is_err());
        assert!(parse(&["serve", "--listen", "x", "--timeout-ms", "0"]).is_err());
        let b = parse(&["serve", "--watch", "drops/"]).unwrap();
        assert_eq!(b.watch.as_deref(), Some("drops/"));
        assert_eq!(b.workers, 4);
    }

    #[test]
    fn serve_observability_flags() {
        let a = parse(&[
            "serve",
            "--listen",
            "127.0.0.1:7453",
            "--log",
            "serve.log",
            "--log-level",
            "debug",
            "--crash-dir",
            "crashes",
            "--trace-out",
            "traces",
        ])
        .unwrap();
        assert_eq!(a.log.as_deref(), Some("serve.log"));
        assert_eq!(a.log_level, "debug");
        assert_eq!(a.crash_dir.as_deref(), Some("crashes"));
        assert_eq!(a.trace_out.as_deref(), Some("traces"));
        // Level defaults to info and is validated.
        let b = parse(&["serve", "--log", "stderr", "--listen", "x"]).unwrap();
        assert_eq!(b.log_level, "info");
        assert!(parse(&["serve", "--listen", "x", "--log-level", "loud"]).is_err());
        // The observability flags belong to `serve`.
        assert!(parse(&["run", "--log", "stderr"]).is_err());
        assert!(parse(&["plan", "--log-level", "debug"]).is_err());
        assert!(parse(&["run", "--crash-dir", "c"]).is_err());
        assert!(parse(&["trace", "--trace-out", "t"]).is_err());
    }

    #[test]
    fn profile_flags() {
        let a = parse(&["plan", "--profile"]).unwrap();
        assert!(a.profile);
        assert!(a.profile_out.is_none());
        // --profile-out implies --profile.
        let b = parse(&["check", "w.json", "--profile-out", "spans.json"]).unwrap();
        assert!(b.profile);
        assert_eq!(b.profile_out.as_deref(), Some("spans.json"));
        assert!(!parse(&["plan"]).unwrap().profile);
        // Profiling belongs to the offline commands.
        assert!(parse(&["run", "--profile"]).is_err());
        assert!(parse(&["trace", "--profile-out", "x.json"]).is_err());
        assert!(parse(&["plan", "--profile-out"]).is_err());
    }

    #[test]
    fn scheme_aliases() {
        assert_eq!(
            parse(&["run", "--scheme", "SS(1)"]).unwrap().scheme,
            SchemeArg::Scheme(pas_core::Scheme::Ss1)
        );
        assert_eq!(
            parse(&["run", "--scheme", "oracle"]).unwrap().scheme,
            SchemeArg::Oracle
        );
    }
}
