//! The `pas check` command: static analysis over workloads, platforms and
//! fault plans.
//!
//! Sources are positional and classified automatically: builtin workload
//! names (`synthetic`, `atr`, `video`) and platform specs (`transmeta`,
//! `xscale`, `continuous:<smin>`) are recognized directly; JSON files are
//! sniffed by their top-level keys (`nodes` → workload, `overrun_prob` →
//! fault plan, `kind` → platform). With no sources, the `--app`/`--model`
//! pair is checked — so `pas check` alone vets the default configuration.

use crate::args::Args;
use andor_graph::AndOrGraph;
use dvfs_power::{Overheads, ProcessorModel};
use mp_sim::FaultPlan;
use pas_analyze::{
    check_application, check_fault_plan, Code, DeadlineSpec, Diagnostic, Loc, Report,
};

/// What one positional source turned out to be.
enum Source {
    Workload(String, AndOrGraph),
    Platform(String, ProcessorModel),
    Fault(String, FaultPlan),
}

/// Runs `pas check <sources>`. Returns `Ok(report)` when the inputs are
/// accepted and `Err(report)` when they are rejected (nonzero exit), so
/// the diagnostics always reach the user either way.
pub fn check_cmd(args: &Args) -> Result<String, String> {
    let mut report = Report::new();
    let mut workloads: Vec<(String, AndOrGraph)> = Vec::new();
    let mut platforms: Vec<(String, ProcessorModel)> = Vec::new();
    let mut fault_plans: Vec<(String, FaultPlan)> = Vec::new();

    let specs: Vec<String> = if args.sources.is_empty() {
        vec![args.app.clone()]
    } else {
        args.sources.clone()
    };
    for spec in &specs {
        match classify(spec, args)? {
            Source::Workload(label, g) => workloads.push((label, g)),
            Source::Platform(label, m) => platforms.push((label, m)),
            Source::Fault(label, p) => fault_plans.push((label, p)),
        }
    }
    // Without an explicit platform source, workloads are checked against
    // the `--model` platform (the same one `run` would use).
    if platforms.is_empty() && !workloads.is_empty() {
        match crate::source::load_model(&args.model) {
            Ok(m) => platforms.push((args.model.clone(), m)),
            Err(e) => report.push(Diagnostic::new(Code::Pas0101, Loc::whole(&args.model), e)),
        }
    }

    let spec = match (args.deadline, args.load) {
        (Some(d), None) => DeadlineSpec::Deadline(d),
        (None, Some(l)) => DeadlineSpec::Load(l),
        (None, None) => DeadlineSpec::Load(0.5),
        (Some(_), Some(_)) => unreachable!("rejected at parse time"),
    };

    let mut summaries = Vec::new();
    for (g_label, g) in &workloads {
        for (m_label, model) in &platforms {
            let analysis = check_application(
                g,
                g_label,
                model,
                m_label,
                Overheads::paper_defaults(),
                args.procs,
                spec,
            );
            if let Some(f) = &analysis.feasibility {
                summaries.push(format!(
                    "{g_label} on {m_label}: worst case {:.3} ms, deadline {:.3} ms, \
                     static slack {:.3} ms over {} OR-path(s){}",
                    f.worst_case_ms,
                    f.deadline_ms,
                    f.static_slack_ms,
                    f.scenarios_total,
                    if f.exact { "" } else { " (bound)" },
                ));
            }
            report.merge(analysis.report);
        }
    }
    // Platform-only invocations (no workload source) still get the
    // platform checked on its own.
    if workloads.is_empty() {
        for (m_label, model) in &platforms {
            report.merge(pas_analyze::check_model(model, m_label));
        }
    }
    for (p_label, plan) in &fault_plans {
        let target = workloads.first().map(|(_, g)| g);
        report.merge(check_fault_plan(plan, target, p_label));
    }

    let rejected = report.rejects(args.deny_warnings);
    let rendered = match args.format.as_str() {
        "json" => report.render_json(),
        "human" | "summary" => {
            let mut out = report.render_human();
            if !rejected {
                for s in &summaries {
                    out.push_str("feasibility: ");
                    out.push_str(s);
                    out.push('\n');
                }
            }
            out
        }
        other => return Err(format!("unknown check format '{other}' (human|json)")),
    };
    if rejected {
        Err(rendered.trim_end().to_string())
    } else {
        Ok(rendered)
    }
}

/// Classifies one positional source, loading it without the eager
/// validation the simulation paths apply (the checks themselves are the
/// validation here).
fn classify(spec: &str, args: &Args) -> Result<Source, String> {
    match spec {
        "synthetic" | "video" | "atr" => {
            let g = crate::source::load_builtin_app(spec, args)?;
            Ok(Source::Workload(spec.to_string(), g))
        }
        "transmeta" | "xscale" => Ok(Source::Platform(
            spec.to_string(),
            crate::source::load_model(spec)?,
        )),
        s if s.starts_with("continuous:") => Ok(Source::Platform(
            s.to_string(),
            crate::source::load_model(s)?,
        )),
        path => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let value: serde::Value =
                serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            if value.get("nodes").is_some() {
                let g: AndOrGraph =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                Ok(Source::Workload(path.to_string(), g))
            } else if value.get("overrun_prob").is_some() {
                let p: FaultPlan =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                Ok(Source::Fault(path.to_string(), p))
            } else if value.get("kind").is_some() {
                let m: ProcessorModel =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                Ok(Source::Platform(path.to_string(), m))
            } else {
                Err(format!(
                    "{path}: cannot classify source (expected a workload with \"nodes\", \
                     a fault plan with \"overrun_prob\", or a platform with \"kind\")"
                ))
            }
        }
    }
}
