//! The `pas check` command: static analysis over workloads, platforms,
//! fault plans and serialized plan artifacts.
//!
//! Sources are positional and classified automatically: builtin workload
//! names (`synthetic`, `atr`, `video`) and platform specs (`transmeta`,
//! `xscale`, `continuous:<smin>`) are recognized directly; JSON files are
//! sniffed by their top-level keys (`schema_version` → plan artifact,
//! `nodes` → workload, `overrun_prob` → fault plan, `kind` → platform).
//! With no sources, the `--app`/`--model` pair is checked — so
//! `pas check` alone vets the default configuration.
//!
//! Plan artifacts (written by `pas plan --out`) are verified against
//! reference inputs: `--against <workload> <platform>` names them
//! explicitly; without it the artifact's recorded workload/platform
//! labels are re-resolved (falling back to `--model` for the platform).
//! The verifier re-derives the whole off-line phase independently and
//! reports any disagreement as a `PAS04xx` diagnostic.
//!
//! `--fix` applies the mechanical graph repairs (duplicate edges,
//! OR-probability renormalization) to every workload *file* source and
//! writes
//! the repaired graph to `<stem>.fixed.json` next to the input.
//!
//! `--bounds` runs the symbolic energy/timing bounds analyzer
//! ([`pas_analyze::analyze_bounds`]) over every workload/platform pair
//! that passed the structural checks: per scheme, a guaranteed
//! `[best, worst]` interval for frame energy and makespan, witness
//! OR-paths for each extreme, and an optimality-gap lower bound,
//! reported as `PAS06xx` diagnostics. When a fault plan is among the
//! sources, its overrun/stall envelope widens the intervals
//! accordingly.

use crate::args::Args;
use andor_graph::AndOrGraph;
use dvfs_power::{Overheads, ProcessorModel};
use mp_sim::FaultPlan;
use pas_analyze::{
    analyze_bounds, check_application, check_fault_plan, BoundsAnalysis, BoundsConfig, Code,
    DeadlineSpec, Diagnostic, FaultEnvelope, Loc, Report,
};
use pas_core::{PlanArtifact, Setup};

/// What one positional source turned out to be.
enum Source {
    Workload(String, AndOrGraph),
    Platform(String, ProcessorModel),
    Fault(String, FaultPlan),
    Plan(String, Box<PlanArtifact>),
}

/// Runs `pas check <sources>`. Returns `Ok(report)` when the inputs are
/// accepted and `Err(report)` when they are rejected (nonzero exit), so
/// the diagnostics always reach the user either way.
pub fn check_cmd(args: &Args) -> Result<String, String> {
    let mut report = Report::new();
    let mut workloads: Vec<(String, AndOrGraph)> = Vec::new();
    let mut platforms: Vec<(String, ProcessorModel)> = Vec::new();
    let mut fault_plans: Vec<(String, FaultPlan)> = Vec::new();
    let mut plans: Vec<(String, Box<PlanArtifact>)> = Vec::new();
    // Workload sources that came from files (not builtins) — the only
    // ones `--fix` can write a repaired sibling for.
    let mut fix_candidates: Vec<(String, AndOrGraph)> = Vec::new();

    let specs: Vec<String> = if args.sources.is_empty() {
        vec![args.app.clone()]
    } else {
        args.sources.clone()
    };
    for spec in &specs {
        match classify(spec, args)? {
            Source::Workload(label, g) => {
                if !matches!(spec.as_str(), "synthetic" | "video" | "atr") {
                    fix_candidates.push((label.clone(), g.clone()));
                }
                workloads.push((label, g));
            }
            Source::Platform(label, m) => platforms.push((label, m)),
            Source::Fault(label, p) => fault_plans.push((label, p)),
            Source::Plan(label, artifact) => plans.push((label, artifact)),
        }
    }
    // `--against` names the reference inputs plan artifacts are verified
    // against; only workloads and platforms make sense there.
    let mut ref_workloads: Vec<(String, AndOrGraph)> = Vec::new();
    let mut ref_platforms: Vec<(String, ProcessorModel)> = Vec::new();
    for spec in &args.against {
        match classify(spec, args)? {
            Source::Workload(label, g) => ref_workloads.push((label, g)),
            Source::Platform(label, m) => ref_platforms.push((label, m)),
            Source::Fault(..) | Source::Plan(..) => {
                return Err(format!(
                    "--against {spec}: expected a workload or platform reference"
                ))
            }
        }
    }
    if !args.against.is_empty() && plans.is_empty() {
        return Err("--against only applies when a plan artifact is among the sources".into());
    }
    // Without an explicit platform source, workloads are checked against
    // the `--model` platform (the same one `run` would use).
    if platforms.is_empty() && !workloads.is_empty() {
        match crate::source::load_model(&args.model) {
            Ok(m) => platforms.push((args.model.clone(), m)),
            Err(e) => report.push(Diagnostic::new(Code::Pas0101, Loc::whole(&args.model), e)),
        }
    }

    let spec = match (args.deadline, args.load) {
        (Some(d), None) => DeadlineSpec::Deadline(d),
        (None, Some(l)) => DeadlineSpec::Load(l),
        (None, None) => DeadlineSpec::Load(0.5),
        (Some(_), Some(_)) => unreachable!("rejected at parse time"),
    };

    let mut summaries = Vec::new();
    let mut bounds_analyses: Vec<BoundsAnalysis> = Vec::new();
    for (g_label, g) in &workloads {
        for (m_label, model) in &platforms {
            let analysis = check_application(
                g,
                g_label,
                model,
                m_label,
                Overheads::paper_defaults(),
                args.procs,
                spec,
            );
            if let Some(f) = &analysis.feasibility {
                summaries.push(format!(
                    "feasibility: {g_label} on {m_label}: worst case {:.3} ms, deadline {:.3} ms, \
                     static slack {:.3} ms over {} OR-path(s){}",
                    f.worst_case_ms,
                    f.deadline_ms,
                    f.static_slack_ms,
                    f.scenarios_total,
                    if f.exact { "" } else { " (bound)" },
                ));
            }
            let pair_sound = !analysis.report.has_errors();
            report.merge(analysis.report);
            // Bounds need a buildable offline plan, so only pairs that
            // passed the structural checks are analyzed.
            if args.bounds && pair_sound {
                let setup = match spec {
                    DeadlineSpec::Deadline(d) => Setup::with_deadline_and_overheads(
                        g.clone(),
                        model.clone(),
                        args.procs,
                        d,
                        Overheads::paper_defaults(),
                    ),
                    DeadlineSpec::Load(l) => {
                        Setup::for_load(g.clone(), model.clone(), args.procs, l)
                    }
                };
                match setup {
                    Ok(setup) => {
                        let cfg = BoundsConfig {
                            fault: fault_plans
                                .first()
                                .and_then(|(_, p)| FaultEnvelope::from_plan(p)),
                            ..BoundsConfig::default()
                        };
                        let ba = analyze_bounds(&setup, &cfg, g_label);
                        summaries.push(format!(
                            "bounds: {g_label} on {m_label}: {} OR-path(s){}, \
                             optimum >= {:.3}",
                            ba.paths,
                            if ba.exact { "" } else { " (DAG join)" },
                            ba.opt_lower_bound,
                        ));
                        for s in &ba.schemes {
                            summaries.push(format!(
                                "bounds: {g_label} on {m_label}: {} energy \
                                 [{:.3}, {:.3}], makespan [{:.3}, {:.3}] ms, gap {:.3}{}",
                                s.scheme,
                                s.energy.lo,
                                s.energy.hi,
                                s.makespan.lo,
                                s.makespan.hi,
                                s.optimality_gap,
                                if s.deadline_safe {
                                    ""
                                } else {
                                    " (deadline at risk)"
                                },
                            ));
                            if !s.witness_hi.is_empty() {
                                summaries.push(format!(
                                    "bounds:   worst path: {}",
                                    s.witness_hi.join(" -> ")
                                ));
                            }
                            if !s.witness_lo.is_empty() && s.witness_lo != s.witness_hi {
                                summaries.push(format!(
                                    "bounds:   best path: {}",
                                    s.witness_lo.join(" -> ")
                                ));
                            }
                        }
                        report.merge(ba.report.clone());
                        bounds_analyses.push(ba);
                    }
                    Err(e) => {
                        summaries.push(format!("bounds: {g_label} on {m_label}: unavailable ({e})"))
                    }
                }
            }
        }
    }
    // Platform-only invocations (no workload source) still get the
    // platform checked on its own.
    if workloads.is_empty() {
        for (m_label, model) in &platforms {
            report.merge(pas_analyze::check_model(model, m_label));
        }
    }
    for (p_label, plan) in &fault_plans {
        let target = workloads.first().map(|(_, g)| g);
        report.merge(check_fault_plan(plan, target, p_label));
    }

    // Plan artifacts: resolve the reference inputs, vet them, then run
    // the independent re-derivation verifier.
    for (p_label, artifact) in &plans {
        let (g_label, g) = match ref_workloads.first() {
            Some((l, g)) => (l.clone(), g.clone()),
            None => match classify(&artifact.workload, args)? {
                Source::Workload(l, g) => (l, g),
                _ => {
                    return Err(format!(
                        "{p_label}: recorded workload '{}' did not resolve to a workload \
                         (name one with --against)",
                        artifact.workload
                    ))
                }
            },
        };
        let (m_label, model) = match ref_platforms.first() {
            Some((l, m)) => (l.clone(), m.clone()),
            None => match classify(&artifact.platform, args) {
                Ok(Source::Platform(l, m)) => (l, m),
                // The recorded platform label may be a path that no longer
                // exists; fall back to the session's `--model`.
                _ => (args.model.clone(), crate::source::load_model(&args.model)?),
            },
        };
        let mut pre = pas_analyze::check_graph(&g, &g_label);
        pre.merge(pas_analyze::check_model(&model, &m_label));
        let pre_clean = !pre.has_errors();
        report.merge(pre);
        // Only verify against structurally sound references — otherwise
        // the re-derivation would blame the plan for the workload's sins.
        if pre_clean {
            report.merge(pas_analyze::check_plan(
                artifact, p_label, &g, &g_label, &model,
            ));
            summaries.push(format!(
                "plan {p_label}: scheme {} verified against {g_label} on {m_label} \
                 (schema v{})",
                artifact.scheme.name(),
                artifact.schema_version
            ));
        }
    }

    // `--fix`: write mechanically repaired copies of workload file
    // sources. Runs even when the report rejects — repairing rejected
    // inputs is the point.
    let mut fix_lines: Vec<String> = Vec::new();
    if args.fix {
        if fix_candidates.is_empty() {
            return Err("--fix needs at least one workload JSON file among the sources".into());
        }
        for (path, g) in &fix_candidates {
            let (fixed, applied) = pas_analyze::fix_graph(g)?;
            if applied.is_empty() {
                fix_lines.push(format!("fix: {path}: no fixable diagnostics"));
                continue;
            }
            let out_path = fixed_path(path);
            let json = serde_json::to_string_pretty(&fixed)
                .map_err(|e| format!("serializing {out_path}: {e}"))?;
            std::fs::write(&out_path, json).map_err(|e| format!("writing {out_path}: {e}"))?;
            for line in &applied {
                fix_lines.push(format!("fix: {path}: {line}"));
            }
            fix_lines.push(format!("fix: wrote {out_path}"));
        }
    }

    let rejected = report.rejects(args.deny_warnings);
    let rendered = match args.format.as_str() {
        // With `--bounds` the JSON document gains a top-level "bounds"
        // array (one `BoundsAnalysis` per analyzed workload/platform
        // pair) next to the usual diagnostics under "report".
        "json" if args.bounds => {
            let bounds_json = serde_json::to_string_pretty(&bounds_analyses)
                .map_err(|e| format!("serializing bounds: {e}"))?;
            format!(
                "{{\n\"report\": {},\n\"bounds\": {}\n}}\n",
                report.render_json().trim_end(),
                bounds_json
            )
        }
        "json" => report.render_json(),
        "human" | "summary" => {
            let mut out = report.render_human();
            for l in &fix_lines {
                out.push_str(l);
                out.push('\n');
            }
            if !rejected {
                for s in &summaries {
                    out.push_str(s);
                    out.push('\n');
                }
            }
            out
        }
        other => return Err(format!("unknown check format '{other}' (human|json)")),
    };
    if rejected {
        Err(rendered.trim_end().to_string())
    } else {
        Ok(rendered)
    }
}

/// `w.json` → `w.fixed.json`; non-`.json` paths get `.fixed.json`
/// appended.
fn fixed_path(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.fixed.json"),
        None => format!("{path}.fixed.json"),
    }
}

/// Classifies one positional source, loading it without the eager
/// validation the simulation paths apply (the checks themselves are the
/// validation here).
fn classify(spec: &str, args: &Args) -> Result<Source, String> {
    match spec {
        "synthetic" | "video" | "atr" => {
            let g = crate::source::load_builtin_app(spec, args)?;
            Ok(Source::Workload(spec.to_string(), g))
        }
        "transmeta" | "xscale" => Ok(Source::Platform(
            spec.to_string(),
            crate::source::load_model(spec)?,
        )),
        s if s.starts_with("continuous:") => Ok(Source::Platform(
            s.to_string(),
            crate::source::load_model(s)?,
        )),
        path => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let value: serde::Value =
                serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            if value.get("schema_version").is_some() {
                let artifact =
                    PlanArtifact::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                Ok(Source::Plan(path.to_string(), Box::new(artifact)))
            } else if value.get("nodes").is_some() {
                let g: AndOrGraph =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                Ok(Source::Workload(path.to_string(), g))
            } else if value.get("overrun_prob").is_some() {
                let p: FaultPlan =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                Ok(Source::Fault(path.to_string(), p))
            } else if value.get("kind").is_some() {
                let m: ProcessorModel =
                    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
                Ok(Source::Platform(path.to_string(), m))
            } else {
                Err(format!(
                    "{path}: cannot classify source (expected a plan artifact with \
                     \"schema_version\", a workload with \"nodes\", a fault plan with \
                     \"overrun_prob\", or a platform with \"kind\")"
                ))
            }
        }
    }
}
