#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! `pas` — the command-line front end. All logic lives in the library so
//! it can be unit-tested; this binary only wires stdin/stdout.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pas_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            // Rendered diagnostics reports explain themselves; the usage
            // line only helps with argument mistakes.
            if !e.contains("[PAS0") {
                eprintln!();
                eprintln!("{}", pas_cli::USAGE);
            }
            std::process::exit(2);
        }
    }
}
