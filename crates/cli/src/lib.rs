#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! `pas` — a command-line tool over the power-aware AND/OR scheduling
//! stack.
//!
//! ```text
//! pas inspect  --app synthetic                       graph & scenario statistics
//! pas plan     --app atr --procs 2 --load 0.5        off-line phase report
//! pas run      --app synthetic --procs 2 --load 0.5 \
//!              --scheme gss --seed 42 --gantt        simulate one realization
//! pas compare  --app atr --procs 2 --load 0.5 \
//!              --reps 200                            Monte-Carlo scheme comparison
//! pas dot      --app synthetic                       Graphviz DOT to stdout
//! pas export   --app atr --out atr.json              save a workload as JSON
//! pas trace    --app atr --scheme as --format chrome \
//!              --out trace.json                      export the event stream
//! pas trace    --app atr --frames 100 --format jsonl \
//!              --out stream.jsonl                    stream 100 frames incrementally
//! pas plan     --app atr --procs 2 --load 0.5 \
//!              --profile                             span-profiled off-line phase
//! pas bench    --check                               diff golden workloads vs baselines
//! pas check    atr xscale faults.json                static analysis & feasibility
//! pas plan     w.json xscale --scheme ss2 \
//!              --out plan.json                       serialize the off-line artifact
//! pas check    plan.json --against w.json xscale     verify a plan artifact
//! pas check    w.json --fix                          write repaired w.fixed.json
//! pas serve    --listen 127.0.0.1:7453 --workers 4   long-running plan/sim daemon
//! ```
//!
//! `--app` accepts the built-in workloads `atr`, `synthetic` and `video`,
//! or a path
//! to a JSON file produced by `pas export` (the serde form of
//! [`andor_graph::AndOrGraph`]). `--model` selects `transmeta` (default),
//! `xscale`, or `continuous:<smin>`.

mod args;
mod check;
mod commands;
mod source;

pub use args::{Args, Command};

/// One-line usage summary printed on argument errors.
pub const USAGE: &str =
    "usage: pas <inspect|plan|run|compare|dot|optimal|export|trace|bench|check|serve> \
[SOURCES...] [--app atr|synthetic|video|FILE.json] [--model transmeta|xscale|continuous:S] \
[--procs N] [--load L | --deadline D] [--scheme npm|spm|gss|ss1|ss2|as|oracle] \
[--seed S] [--reps N] [--alpha A] [--gantt] [--out FILE] \
[--fault-plan FILE.json] [--format chrome|jsonl|csv|summary] [--proc P] \
[--kinds k1,k2,...] [--frames N] [--carry] [--metrics] \
[--check] [--update-baselines] [--bench-dir DIR] [--workloads w1,w2,...] \
[--deny-warnings] [--against REF...] [--fix] \
[--profile] [--profile-out FILE] \
[--listen HOST:PORT] [--socket PATH] [--watch DIR] [--workers N] [--queue N] \
[--timeout-ms T] [--debug-faults] [--log FILE|stderr] [--log-level L] \
[--crash-dir DIR] [--trace-out DIR]";

/// Parses `args` and executes the selected command, returning the text to
/// print.
pub fn run(args: &[String]) -> Result<String, String> {
    let parsed = Args::parse(args)?;
    commands::execute(&parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(argv: &[&str]) -> Result<String, String> {
        let v: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn no_args_is_an_error() {
        assert!(call(&[]).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = call(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
    }

    #[test]
    fn inspect_synthetic() {
        let out = call(&["inspect", "--app", "synthetic"]).unwrap();
        assert!(out.contains("tasks"), "{out}");
        assert!(out.contains("scenarios"), "{out}");
        assert!(out.contains("sections"), "{out}");
    }

    #[test]
    fn inspect_atr_with_alpha() {
        let out = call(&["inspect", "--app", "atr", "--alpha", "0.5"]).unwrap();
        assert!(out.contains("scenarios: 4"), "{out}");
    }

    #[test]
    fn plan_reports_offline_quantities() {
        let out = call(&[
            "plan",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("Tw"), "{out}");
        assert!(out.contains("Ta"), "{out}");
        assert!(out.contains("PMP"), "{out}");
        assert!(out.contains("canonical schedule"), "{out}");
        assert!(out.contains("latest start"), "{out}");
    }

    #[test]
    fn plan_rejects_infeasible_deadline() {
        let err = call(&[
            "plan",
            "--app",
            "synthetic",
            "--procs",
            "1",
            "--deadline",
            "1.0",
        ])
        .unwrap_err();
        assert!(err.contains("infeasible"), "{err}");
    }

    #[test]
    fn run_gss_with_gantt() {
        let out = call(&[
            "run",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--scheme",
            "gss",
            "--seed",
            "7",
            "--gantt",
        ])
        .unwrap();
        assert!(out.contains("finished at"), "{out}");
        assert!(out.contains("deadline met"), "{out}");
        assert!(out.contains("p0 "), "gantt lane expected: {out}");
        assert!(out.contains("pw "), "power timeline expected: {out}");
        assert!(out.contains("speed changes"), "{out}");
    }

    #[test]
    fn run_with_fault_plan_reports_injections() {
        let dir = std::env::temp_dir().join("pas_cli_test_run_faults");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("plan.json");
        let plan = mp_sim::FaultPlan::overruns(1.0, 1.5, 5);
        std::fs::write(&path, serde_json::to_string(&plan).unwrap()).unwrap();
        let out = call(&[
            "run",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--scheme",
            "gss",
            "--seed",
            "7",
            "--fault-plan",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("overruns"), "{out}");
        assert!(out.contains("detected"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_fault_plan_is_a_one_line_error() {
        let dir = std::env::temp_dir().join("pas_cli_test_corrupt_faults");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("broken.json");
        std::fs::write(&path, "{\"overrun_prob\": [oops").unwrap();
        let err = call(&[
            "run",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--fault-plan",
            path.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("parsing"), "{err}");
        assert!(!err.contains('\n'), "one-line error: {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_is_rejected_outside_run() {
        let err = call(&["compare", "--app", "synthetic", "--fault-plan", "x.json"]).unwrap_err();
        assert!(err.contains("applies only to `run`"), "{err}");
    }

    #[test]
    fn run_oracle_scheme() {
        let out = call(&[
            "run",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--scheme",
            "oracle",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("deadline met"), "{out}");
    }

    #[test]
    fn compare_prints_all_schemes() {
        let out = call(&[
            "compare",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--reps",
            "20",
            "--seed",
            "3",
        ])
        .unwrap();
        for name in ["NPM", "SPM", "GSS", "SS(1)", "SS(2)", "AS", "Oracle"] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
        assert!(out.contains("p95"), "p95 column expected: {out}");
    }

    #[test]
    fn dot_emits_graphviz() {
        let out = call(&["dot", "--app", "synthetic"]).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("doublecircle"));
    }

    #[test]
    fn export_and_reimport_round_trip() {
        let dir = std::env::temp_dir().join("pas_cli_test_export");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("app.json");
        let path_s = path.to_str().unwrap();
        let out = call(&["export", "--app", "synthetic", "--out", path_s]).unwrap();
        assert!(out.contains("wrote"), "{out}");
        // Re-load through --app FILE.json.
        let out = call(&["inspect", "--app", path_s]).unwrap();
        assert!(out.contains("scenarios: 10"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn video_workload_runs() {
        let out = call(&[
            "run", "--app", "video", "--procs", "2", "--load", "0.6", "--scheme", "as", "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("deadline met"), "{out}");
    }

    #[test]
    fn model_selection() {
        let out = call(&[
            "run",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--scheme",
            "gss",
            "--model",
            "xscale",
        ])
        .unwrap();
        assert!(out.contains("Intel XScale"), "{out}");
        let out = call(&[
            "run",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--scheme",
            "gss",
            "--model",
            "continuous:0.2",
        ])
        .unwrap();
        assert!(out.contains("Continuous"), "{out}");
        assert!(call(&["run", "--app", "synthetic", "--model", "bogus"]).is_err());
    }

    #[test]
    fn optimal_on_tiny_custom_instance() {
        // The built-in apps are too big for exhaustive search; build a tiny
        // one, export it, and run `optimal` on the file.
        let dir = std::env::temp_dir().join("pas_cli_test_optimal");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("tiny.json");
        let app = andor_graph::Segment::seq([
            andor_graph::Segment::task("A", 4.0, 2.0),
            andor_graph::Segment::task("B", 3.0, 1.5),
        ])
        .lower()
        .unwrap();
        std::fs::write(&path, serde_json::to_string(&app).unwrap()).unwrap();
        let path_s = path.to_str().unwrap();
        let out = call(&[
            "optimal", "--app", path_s, "--procs", "1", "--load", "0.5", "--model", "xscale",
        ])
        .unwrap();
        assert!(out.contains("exhaustive optimum"), "{out}");
        assert!(out.contains("worst-case energy"), "{out}");
        assert!(out.contains("GSS"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn optimal_rejects_big_instances() {
        let err = call(&["optimal", "--app", "atr", "--load", "0.5"]).unwrap_err();
        assert!(err.contains("too large"), "{err}");
    }

    #[test]
    fn trace_summary_reports_ledger_and_counts() {
        let out = call(&[
            "trace",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--scheme",
            "gss",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("events:"), "{out}");
        assert!(out.contains("dispatch"), "{out}");
        // Throughput fields are spelled like the BENCH_<rev>.json record
        // fields so the two views correlate.
        assert!(out.contains("events_per_sec = "), "{out}");
        assert!(out.contains("peak_ring_occupancy = "), "{out}");
        assert!(out.contains("energy ledger"), "{out}");
        assert!(out.contains("matches engine total_energy"), "{out}");
        assert!(out.contains("event-derived"), "{out}");
    }

    #[test]
    fn trace_chrome_is_valid_json_with_filters() {
        let out = call(&[
            "trace",
            "--app",
            "synthetic",
            "--scheme",
            "as",
            "--format",
            "chrome",
        ])
        .unwrap();
        let doc: serde::Value = serde_json::from_str(&out).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // Filtering down to one processor's completions still parses and
        // carries only task slices (plus thread metadata).
        let narrow = call(&[
            "trace",
            "--app",
            "synthetic",
            "--scheme",
            "as",
            "--format",
            "chrome",
            "--proc",
            "0",
            "--kinds",
            "complete",
        ])
        .unwrap();
        let doc: serde::Value = serde_json::from_str(&narrow).expect("valid JSON");
        let narrow_events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(narrow_events.len() < events.len(), "filter narrows stream");
    }

    #[test]
    fn trace_jsonl_round_trips_and_csv_has_metrics() {
        let out = call(&[
            "trace",
            "--app",
            "synthetic",
            "--scheme",
            "ss1",
            "--format",
            "jsonl",
        ])
        .unwrap();
        let events = pas_obs::export::from_jsonl(&out).expect("round-trips");
        assert!(!events.is_empty());
        let csv = call(&[
            "trace",
            "--app",
            "synthetic",
            "--scheme",
            "ss1",
            "--format",
            "csv",
        ])
        .unwrap();
        assert!(csv.starts_with("metric,kind,value"), "{csv}");
        assert!(csv.contains("speed_changes.total"), "{csv}");
    }

    #[test]
    fn trace_rejects_bad_format_and_kind() {
        let err = call(&["trace", "--app", "synthetic", "--format", "yaml"]).unwrap_err();
        assert!(err.contains("unknown trace format"), "{err}");
        let err = call(&["trace", "--app", "synthetic", "--kinds", "bogus"]).unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn trace_writes_out_file() {
        let dir = std::env::temp_dir().join("pas_cli_test_trace_out");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("trace.json");
        let path_s = path.to_str().unwrap();
        let out = call(&[
            "trace",
            "--app",
            "synthetic",
            "--format",
            "chrome",
            "--out",
            path_s,
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(serde_json::from_str::<serde::Value>(&body).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_accepts_fault_plan() {
        let dir = std::env::temp_dir().join("pas_cli_test_trace_faults");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("plan.json");
        let plan = mp_sim::FaultPlan::overruns(1.0, 1.5, 5);
        std::fs::write(&path, serde_json::to_string(&plan).unwrap()).unwrap();
        let out = call(&[
            "trace",
            "--app",
            "synthetic",
            "--scheme",
            "gss",
            "--seed",
            "7",
            "--fault-plan",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("fault-injected"), "{out}");
        assert!(out.contains("matches engine total_energy"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_streams_frames_incrementally() {
        let dir = std::env::temp_dir().join("pas_cli_test_trace_frames");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("stream.jsonl");
        let path_s = path.to_str().unwrap();
        let out = call(&[
            "trace",
            "--app",
            "synthetic",
            "--scheme",
            "gss",
            "--seed",
            "7",
            "--frames",
            "6",
            "--format",
            "jsonl",
            "--out",
            path_s,
        ])
        .unwrap();
        assert!(out.contains("streamed"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        let events = pas_obs::export::from_jsonl(&body).expect("round-trips");
        // Six frames of one run each: strictly more events than one run.
        let one = call(&[
            "trace",
            "--app",
            "synthetic",
            "--scheme",
            "gss",
            "--seed",
            "7",
            "--format",
            "jsonl",
        ])
        .unwrap();
        assert!(events.len() > pas_obs::export::from_jsonl(&one).unwrap().len());
        // Streamed summaries report the frame count and bounded window.
        let summary = call(&[
            "trace",
            "--app",
            "synthetic",
            "--scheme",
            "gss",
            "--seed",
            "7",
            "--frames",
            "6",
            "--carry",
        ])
        .unwrap();
        assert!(summary.contains("6 frames streamed"), "{summary}");
        assert!(summary.contains("DVS state carried over"), "{summary}");
        assert!(summary.contains("bounded ring"), "{summary}");
        assert!(summary.contains("matches engine total_energy"), "{summary}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_frames_rejects_oracle_and_faults() {
        let err = call(&[
            "trace",
            "--app",
            "synthetic",
            "--frames",
            "2",
            "--scheme",
            "oracle",
        ])
        .unwrap_err();
        assert!(err.contains("oracle"), "{err}");
        let err = call(&[
            "trace",
            "--app",
            "synthetic",
            "--frames",
            "2",
            "--fault-plan",
            "x.json",
        ])
        .unwrap_err();
        assert!(err.contains("--frames"), "{err}");
    }

    #[test]
    fn trace_summary_lists_per_section_slices() {
        let out = call(&[
            "trace",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--scheme",
            "as",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("per-section slices"), "{out}");
        assert!(out.contains("root"), "{out}");
    }

    #[test]
    fn bench_writes_report_checks_baselines_and_flags_drift() {
        let dir = std::env::temp_dir().join("pas_cli_test_bench");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let baselines = dir.join("baselines");
        let report = dir.join("bench.json");
        let base = [
            "bench",
            "--reps",
            "1",
            "--workloads",
            "fig4",
            "--bench-dir",
            baselines.to_str().unwrap(),
            "--out",
            report.to_str().unwrap(),
        ];
        // First run refreshes the baselines...
        let mut argv: Vec<&str> = base.to_vec();
        argv.push("--update-baselines");
        let out = call(&argv).unwrap();
        assert!(out.contains("pas bench"), "{out}");
        assert!(out.contains("bench_baseline.json"), "{out}");
        let body = std::fs::read_to_string(&report).unwrap();
        let doc: serde::Value = serde_json::from_str(&body).expect("valid JSON");
        assert!(doc.get("records").is_some(), "{body}");
        // ...then an identical run passes the check...
        let mut argv: Vec<&str> = base.to_vec();
        argv.push("--check");
        let out = call(&argv).unwrap();
        assert!(out.contains("baseline check passed"), "{out}");
        // ...and a different seed drifts.
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--check", "--seed", "1234"]);
        let err = call(&argv).unwrap_err();
        assert!(err.contains("drift"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_rejects_unknown_workload() {
        let err = call(&["bench", "--reps", "1", "--workloads", "fig9"]).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn compare_metrics_aggregates_and_cross_checks() {
        let out = call(&[
            "compare",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--reps",
            "10",
            "--seed",
            "3",
            "--metrics",
        ])
        .unwrap();
        assert!(out.contains("metrics registry aggregated"), "{out}");
        assert!(out.contains("events/run"), "{out}");
        assert!(out.contains("60 runs, 0 speed-change mismatches"), "{out}");
    }

    #[test]
    fn bad_scheme_is_an_error() {
        let err = call(&["run", "--app", "synthetic", "--scheme", "warp-speed"]).unwrap_err();
        assert!(err.contains("unknown scheme"), "{err}");
    }

    #[test]
    fn plan_artifact_round_trips_through_check() {
        let dir = std::env::temp_dir().join("pas_cli_test_plan_artifact");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let w = dir.join("w.json");
        let w_s = w.to_str().unwrap();
        call(&["export", "--app", "synthetic", "--out", w_s]).unwrap();
        let p = dir.join("plan.json");
        let p_s = p.to_str().unwrap();
        // Positional sources: workload file + platform builtin.
        let out = call(&["plan", w_s, "xscale", "--scheme", "ss2", "--out", p_s]).unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(out.contains("schema v1"), "{out}");
        // Honest artifact verifies cleanly against explicit references...
        let out = call(&["check", p_s, "--against", w_s, "xscale", "--deny-warnings"]).unwrap();
        assert!(out.contains("verified against"), "{out}");
        // ...and against the labels recorded inside the artifact.
        let out = call(&["check", p_s, "--deny-warnings"]).unwrap();
        assert!(out.contains("verified against"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_plan_artifacts_are_rejected() {
        let dir = std::env::temp_dir().join("pas_cli_test_plan_tamper");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let w = dir.join("w.json");
        let w_s = w.to_str().unwrap();
        call(&["export", "--app", "synthetic", "--out", w_s]).unwrap();
        let p = dir.join("plan.json");
        let p_s = p.to_str().unwrap();
        call(&["plan", w_s, "xscale", "--scheme", "ss2", "--out", p_s]).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        // A switch time outside [0, D] violates the SS(2) window bound.
        let mut a = pas_core::PlanArtifact::from_json(&text).unwrap();
        match &mut a.params {
            pas_core::SchemeParams::Ss2 { switch_time, .. } => *switch_time = -5.0,
            other => panic!("ss2 plan expected, got {other:?}"),
        }
        std::fs::write(&p, a.to_json().unwrap()).unwrap();
        let err = call(&["check", p_s, "--against", w_s, "xscale"]).unwrap_err();
        assert!(err.contains("PAS0407"), "{err}");
        // A shifted latest-start-time disagrees with the re-derivation.
        let mut a = pas_core::PlanArtifact::from_json(&text).unwrap();
        let slot = a
            .plan
            .lst
            .iter_mut()
            .find(|s| s.is_some())
            .expect("some computation node");
        *slot = Some(slot.unwrap() + 3.0);
        std::fs::write(&p, a.to_json().unwrap()).unwrap();
        let err = call(&["check", p_s, "--against", w_s, "xscale"]).unwrap_err();
        assert!(err.contains("PAS0404"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_fix_writes_repaired_workload() {
        let dir = std::env::temp_dir().join("pas_cli_test_check_fix");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let bad = dir.join("bad.json");
        let bad_s = bad.to_str().unwrap();
        std::fs::write(
            &bad,
            r#"{"nodes": [
                {"name": "A", "kind": {"Computation": {"wcet": 2.0, "acet": 1.0}}, "preds": [], "succs": [1, 1]},
                {"name": "B", "kind": {"Computation": {"wcet": 3.0, "acet": 1.5}}, "preds": [0, 0], "succs": []}
            ]}"#,
        )
        .unwrap();
        // Whether or not the duplicate edge rejects the input, the fix
        // must be written and reported.
        let text = match call(&["check", bad_s, "--fix", "--deny-warnings"]) {
            Ok(t) | Err(t) => t,
        };
        assert!(text.contains("dropped duplicate edge"), "{text}");
        assert!(text.contains("fix: wrote"), "{text}");
        let fixed = dir.join("bad.fixed.json");
        assert!(fixed.exists(), "repaired sibling written");
        // The repaired workload passes the strict check.
        let out = call(&["check", fixed.to_str().unwrap(), "--deny-warnings"]).unwrap();
        assert!(out.contains("feasibility:"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // One test covers every profiled invocation: the profiler is a
    // process-wide singleton, so concurrent `--profile` tests would
    // steal each other's spans.
    #[test]
    fn plan_and_check_profile_the_offline_phase() {
        let out = call(&[
            "plan",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--profile",
        ])
        .unwrap();
        assert!(out.contains("profile (offline-phase wall clock)"), "{out}");
        assert!(out.contains(pas_obs::profile::names::CLI_PLAN), "{out}");
        assert!(
            out.contains(pas_obs::profile::names::OFFLINE_BUILD),
            "{out}"
        );
        assert!(
            out.contains(pas_obs::profile::names::OFFLINE_CANONICAL),
            "{out}"
        );
        // The root span's duration covers its direct children: the tree
        // renderer annotates parents with their children's total.
        assert!(out.contains("(children"), "{out}");

        let out = call(&["check", "--app", "synthetic", "--profile"]).unwrap();
        assert!(out.contains(pas_obs::profile::names::CLI_CHECK), "{out}");

        // `--profile-out` writes a Chrome trace instead of the tree.
        let dir = std::env::temp_dir().join("pas_cli_test_profile_out");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("trace.json");
        let path_s = path.to_str().unwrap();
        let out = call(&[
            "plan",
            "--app",
            "synthetic",
            "--procs",
            "2",
            "--load",
            "0.5",
            "--profile-out",
            path_s,
        ])
        .unwrap();
        assert!(out.contains("profile: wrote"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        let doc: serde::Value = serde_json::from_str(&body).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_out_rejects_oracle() {
        let err = call(&["plan", "--scheme", "oracle", "--out", "/tmp/x.json"]).unwrap_err();
        assert!(err.contains("oracle"), "{err}");
    }
}
