//! Command implementations. Every command returns the text to print, so
//! the whole tool is unit-testable without spawning processes.

use crate::args::{Args, Command, SchemeArg};
use crate::source::{load_app, load_fault_plan, load_model};
use andor_graph::{app_profile, to_dot, SectionGraph};
use mp_sim::trace::{lane_stats, power_profile, render_gantt, GanttOptions};
use mp_sim::ExecTimeModel;
use pas_core::{Scheme, Setup, SetupError};
use pas_stats::{Histogram, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Dispatches a parsed command line.
pub fn execute(args: &Args) -> Result<String, String> {
    if args.fault_plan.is_some() && args.command != Command::Run && args.command != Command::Trace {
        return Err("--fault-plan applies only to `run` and `trace`".into());
    }
    match args.command {
        Command::Inspect => inspect(args),
        Command::Plan => with_profile(args, pas_obs::profile::names::CLI_PLAN, || plan(args)),
        Command::Run => run_one(args),
        Command::Compare => compare(args),
        Command::Dot => dot(args),
        Command::Optimal => optimal(args),
        Command::Export => export(args),
        Command::Trace => trace_cmd(args),
        Command::Bench => bench_cmd(args),
        Command::Check => with_profile(args, pas_obs::profile::names::CLI_CHECK, || {
            crate::check::check_cmd(args)
        }),
        Command::Serve => serve_cmd(args),
    }
}

/// Runs `body` under the span profiler when `--profile` was given: the
/// whole command becomes the root span, and the collected tree is either
/// appended to the command output or written to `--profile-out` as a
/// Chrome trace (open in Perfetto / `chrome://tracing`). Profiling only
/// observes the wall clock — command output and artifacts are
/// byte-identical with it on or off.
fn with_profile(
    args: &Args,
    root: &'static str,
    body: impl FnOnce() -> Result<String, String>,
) -> Result<String, String> {
    use pas_obs::profile;
    if !args.profile {
        return body();
    }
    // Other in-process profiler users (the bench harness, parallel
    // tests) must not drain our spans mid-command.
    let _session = profile::exclusive();
    profile::enable();
    let result = {
        let _root = profile::span(root);
        body()
    };
    profile::disable();
    let spans = profile::take();
    let mut out = result?;
    match &args.profile_out {
        Some(path) => {
            std::fs::write(path, profile::chrome_trace(&spans))
                .map_err(|e| format!("writing {path}: {e}"))?;
            if !out.ends_with('\n') {
                out.push('\n');
            }
            let _ = writeln!(out, "profile: wrote {path} ({} spans)", spans.len());
        }
        None => {
            if !out.ends_with('\n') {
                out.push('\n');
            }
            let _ = writeln!(out, "\nprofile (offline-phase wall clock):");
            out.push_str(&profile::render_tree(&spans));
        }
    }
    Ok(out)
}

/// Cheap static checks run automatically before `run`, `trace` and
/// `bench`: graph well-formedness and platform validity. Errors abort
/// with rendered diagnostics; warnings are ignored here (run `pas check`
/// for the full report including feasibility).
fn precheck(args: &Args) -> Result<(), String> {
    let graph = crate::source::load_app_unvalidated(args)?;
    let model = load_model(&args.model)?;
    let mut report = pas_analyze::check_graph(&graph, &args.app);
    report.merge(pas_analyze::check_model(&model, &args.model));
    if report.has_errors() {
        return Err(format!(
            "pre-run check failed:\n{}",
            report.render_human().trim_end()
        ));
    }
    Ok(())
}

fn build_setup(args: &Args) -> Result<Setup, String> {
    let graph = load_app(args)?;
    let model = load_model(&args.model)?;
    let result = match (args.deadline, args.load) {
        (Some(d), None) => Setup::new(graph, model, args.procs, d),
        (None, Some(l)) => Setup::for_load(graph, model, args.procs, l),
        (None, None) => Setup::for_load(graph, model, args.procs, 0.5),
        (Some(_), Some(_)) => unreachable!("rejected at parse time"),
    };
    result.map_err(|e| match e {
        SetupError::Offline(pas_core::OfflineError::Infeasible {
            worst_finish,
            deadline,
        }) => format!(
            "infeasible: the worst case needs {worst_finish:.2} ms but the \
             deadline is {deadline:.2} ms"
        ),
        other => other.to_string(),
    })
}

fn inspect(args: &Args) -> Result<String, String> {
    let graph = load_app(args)?;
    let sections = SectionGraph::build(&graph).map_err(|e| format!("section structure: {e}"))?;
    let profile = app_profile(&graph, &sections);
    let mut out = String::new();
    let _ = writeln!(out, "application: {}", args.app);
    let _ = writeln!(
        out,
        "  nodes: {} ({} tasks, {} OR, {} AND/sync)",
        graph.len(),
        graph.num_tasks(),
        graph.num_or_nodes(),
        graph.len() - graph.num_tasks() - graph.num_or_nodes()
    );
    let _ = writeln!(out, "  sections: {}", sections.len());
    let _ = writeln!(out, "  scenarios: {}", profile.scenarios);
    let _ = writeln!(
        out,
        "  work (WCET): expected {:.1} ms, range {:.1}..{:.1} ms",
        profile.expected_wcet, profile.wcet_range.0, profile.wcet_range.1
    );
    let _ = writeln!(
        out,
        "  work (ACET): expected {:.1} ms",
        profile.expected_acet
    );
    let _ = writeln!(
        out,
        "  worst critical path: {:.1} ms (mean parallelism {:.2})",
        profile.worst_critical_path, profile.mean_parallelism
    );
    let _ = writeln!(out, "\nsections (chain order):");
    for (i, section) in sections.sections().iter().enumerate() {
        let names: Vec<&str> = section
            .nodes
            .iter()
            .map(|&n| graph.node(n).name.as_str())
            .take(8)
            .collect();
        let ellipsis = if section.nodes.len() > 8 { ", …" } else { "" };
        let exit = section
            .exit_or
            .map(|o| graph.node(o).name.clone())
            .unwrap_or_else(|| "end".into());
        let _ = writeln!(
            out,
            "  s{i} depth {}: {} node(s) [{}{}] -> {}",
            section.depth,
            section.nodes.len(),
            names.join(", "),
            ellipsis,
            exit
        );
    }
    Ok(out)
}

/// True when a `plan` positional source names a platform rather than a
/// workload: a builtin model spec, or a JSON file whose top level carries
/// the `ProcessorModel` `"kind"` tag.
fn is_platform_spec(spec: &str) -> bool {
    if matches!(spec, "transmeta" | "xscale") || spec.starts_with("continuous:") {
        return true;
    }
    std::fs::read_to_string(spec)
        .ok()
        .and_then(|text| serde_json::from_str::<serde::Value>(&text).ok())
        .is_some_and(|v| v.get("kind").is_some() && v.get("nodes").is_none())
}

fn serve_cmd(args: &Args) -> Result<String, String> {
    use pas_obs::log;
    if let Some(dest) = &args.log {
        let level = log::Level::parse(&args.log_level)
            .ok_or_else(|| format!("bad --log-level '{}'", args.log_level))?;
        let sink: Box<dyn std::io::Write + Send> = if dest == "stderr" {
            Box::new(std::io::stderr())
        } else {
            Box::new(
                std::fs::File::create(dest)
                    .map_err(|e| format!("pas serve: opening log {dest}: {e}"))?,
            )
        };
        log::init(Some(sink), level, log::DEFAULT_RING_CAP);
    }
    let cfg = pas_serve::ServeConfig {
        workers: args.workers,
        queue_cap: args.queue,
        default_timeout_ms: args.timeout_ms,
        debug_faults: args.debug_faults,
        crash_dir: args.crash_dir.clone(),
        trace_dir: args.trace_out.clone(),
        ..pas_serve::ServeConfig::default()
    };
    let eps = pas_serve::Endpoints {
        tcp: args.listen.clone(),
        unix: args.socket.clone(),
        watch: args.watch.clone(),
    };
    let out = pas_serve::run_server(cfg, &eps).map(|summary| format!("{summary}\n"));
    // Flush and close the log file even when the server exits with a
    // configuration error.
    log::shutdown();
    out
}

fn plan(args: &Args) -> Result<String, String> {
    // Positional sources override the `--app`/`--model` defaults, so the
    // documented invocation `pas plan workload.json xscale --out p.json`
    // works without flag spelling.
    let mut eff = args.clone();
    for spec in &args.sources {
        if is_platform_spec(spec) {
            eff.model = spec.clone();
        } else {
            eff.app = spec.clone();
        }
    }
    let args = &eff;
    let setup = build_setup(args)?;
    if let Some(path) = &args.out {
        let scheme = match args.scheme {
            SchemeArg::Scheme(s) => s,
            SchemeArg::Oracle => {
                return Err(
                    "the oracle has no serializable plan (its schedule is per-realization); \
                     pick one of npm|spm|gss|ss1|ss2|as"
                        .into(),
                )
            }
        };
        let artifact = pas_core::PlanArtifact::from_setup(&setup, scheme, &args.app, &args.model);
        let json = artifact
            .to_json()
            .map_err(|e| format!("serializing: {e}"))?;
        let digest = artifact.digest().map_err(|e| format!("digesting: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        return Ok(format!(
            "wrote {path} (schema v{}, scheme {}, {} nodes, {} sections)\ndigest sha256:{digest}\n",
            pas_core::PLAN_SCHEMA_VERSION,
            scheme.name(),
            setup.graph.len(),
            setup.sections.len()
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "off-line phase — {} processors, deadline {:.2} ms, model {}",
        setup.plan.num_procs,
        setup.plan.deadline,
        setup.model.name()
    );
    let _ = writeln!(
        out,
        "  Tw (worst finish) = {:.2} ms   Ta (average finish) = {:.2} ms",
        setup.plan.worst_total, setup.plan.avg_total
    );
    let _ = writeln!(
        out,
        "  load = {:.3}   static slack = {:.2} ms",
        setup.plan.load(),
        setup.plan.static_slack()
    );
    if let SchemeArg::Scheme(scheme) = args.scheme {
        let artifact = pas_core::PlanArtifact::from_setup(&setup, scheme, &args.app, &args.model);
        let digest = artifact.digest().map_err(|e| format!("digesting: {e}"))?;
        let _ = writeln!(out, "  plan digest ({}) = sha256:{digest}", scheme.name());
    }
    let mut pmps: Vec<_> = setup.plan.branch_worst.iter().collect();
    pmps.sort_by_key(|((or, k), _)| (*or, *k));
    let _ = writeln!(out, "\nPMP statistics (per OR branch):");
    for ((or, k), tw) in pmps {
        let ta = setup.plan.branch_avg[&(*or, *k)];
        let _ = writeln!(
            out,
            "  {} branch {k}: Tw_k = {tw:.2} ms, Ta_k = {ta:.2} ms",
            setup.graph.node(*or).name
        );
    }
    let _ = writeln!(
        out,
        "\ncanonical schedule (per section, worst case at full speed):"
    );
    for (sid, order) in setup.plan.dispatch.per_section.iter().enumerate() {
        if order.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  section s{sid} (length {:.2} ms):",
            setup.plan.section_worst_len[sid]
        );
        for (&node, &start) in order.iter().zip(&setup.plan.canonical_start_rel[sid]) {
            let n = setup.graph.node(node);
            if !n.kind.is_computation() {
                continue;
            }
            let lst = setup.plan.lst[node.index()].expect("computation node");
            let _ = writeln!(
                out,
                "    {:<22} canonical [{:>7.2}, {:>7.2}]   latest start {:>8.2} ms",
                n.name,
                start,
                start + n.kind.wcet(),
                lst
            );
        }
    }
    Ok(out)
}

fn run_one(args: &Args) -> Result<String, String> {
    precheck(args)?;
    let setup = build_setup(args)?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    let fault_plan = match &args.fault_plan {
        Some(path) => Some(load_fault_plan(path)?),
        None => None,
    };
    // The seed doubles as the fault plan's run index, so `--seed` varies
    // the drawn faults alongside the realization.
    let fault_set = fault_plan
        .as_ref()
        .map(|p| p.realize(&setup.graph, args.seed));
    let res = match args.scheme {
        SchemeArg::Scheme(scheme) => {
            let mut policy = setup.policy(scheme);
            setup
                .simulator(true)
                .run_full(policy.as_mut(), &real, None, fault_set.as_ref())
        }
        SchemeArg::Oracle => {
            let mut oracle = setup
                .oracle(&real)
                .map_err(|e| format!("simulation: {e}"))?;
            setup
                .simulator(true)
                .run_full(&mut oracle, &real, None, fault_set.as_ref())
        }
    }
    .map_err(|e| format!("simulation: {e}"))?;
    let scheme_name = match args.scheme {
        SchemeArg::Scheme(s) => s.name().to_string(),
        SchemeArg::Oracle => "Oracle".into(),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} ({} processors, seed {})",
        scheme_name,
        setup.model.name(),
        setup.plan.num_procs,
        args.seed
    );
    let status = if res.status.met() {
        "met".to_string()
    } else {
        format!("MISSED by {:.2} ms", res.status.missed_by())
    };
    let _ = writeln!(
        out,
        "finished at {:.2} ms of {:.2} ms — deadline {}",
        res.finish_time, res.deadline, status
    );
    if fault_plan.is_some() {
        let f = res.faults;
        let _ = writeln!(
            out,
            "faults: {} injected ({} overruns, {} speed failures, {} stalls), \
             {} detected, {} recoveries, recovery energy {:.3}",
            f.total_injected(),
            f.overruns_injected,
            f.speed_failures_injected,
            f.stalls_injected,
            f.overruns_detected,
            f.recoveries,
            f.recovery_energy
        );
    }
    let _ = writeln!(
        out,
        "energy {:.3} (busy {:.3}, idle {:.3}, transitions {:.3}), {} speed changes",
        res.total_energy(),
        res.energy.busy_energy(),
        res.energy.idle_energy(),
        res.energy.transition_energy(),
        res.energy.speed_changes()
    );
    let trace = res.trace.as_ref().expect("tracing enabled");
    for lane in lane_stats(
        trace,
        setup.plan.num_procs,
        res.deadline.max(res.finish_time),
    )
    .map_err(|e| format!("trace analysis: {e}"))?
    {
        let _ = writeln!(
            out,
            "  p{}: {} tasks, busy {:.1} ms, utilization {:.0}%, mean speed {:.2}",
            lane.proc,
            lane.tasks,
            lane.busy,
            lane.utilization * 100.0,
            lane.mean_speed
        );
    }
    if args.gantt {
        let _ = writeln!(out);
        let opts = GanttOptions {
            width: 72,
            deadline: Some(res.deadline),
        };
        out.push_str(&render_gantt(
            trace,
            &setup.graph,
            setup.plan.num_procs,
            &opts,
        ));
        // Dynamic-power timeline under the Gantt: mean normalized power
        // per window, rendered as deciles of the theoretical maximum
        // (num_procs · P_max).
        let horizon = res.deadline.max(res.finish_time);
        let powers: Vec<f64> = trace
            .iter()
            .map(|e| setup.model.quantize_up(e.speed).power)
            .collect();
        let profile = power_profile(trace, &powers, 72, horizon)
            .map_err(|e| format!("trace analysis: {e}"))?;
        let row: String = profile
            .iter()
            .map(|p| {
                let decile = (p / setup.plan.num_procs as f64 * 10.0)
                    .round()
                    .clamp(0.0, 9.0) as u8;
                (b'0' + decile) as char
            })
            .collect();
        let _ = writeln!(out, "pw {row}");
    }
    Ok(out)
}

fn compare(args: &Args) -> Result<String, String> {
    let setup = build_setup(args)?;
    if let Some(batch) = args.batch {
        return compare_batch(args, &setup, batch);
    }
    let etm = ExecTimeModel::paper_defaults();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let n = Scheme::ALL.len() + 1;
    let mut energies: Vec<Summary> = vec![Summary::new(); n];
    let mut changes: Vec<Summary> = vec![Summary::new(); n];
    let mut misses = vec![0u64; n];
    // Upper bound for the energy histograms: NPM busy+idle over the whole
    // horizon on every processor.
    let e_max = setup.plan.num_procs as f64 * setup.plan.deadline * 1.05;
    let mut hists: Vec<Histogram> = (0..n)
        .map(|_| Histogram::new(0.0, e_max, 200).expect("valid range"))
        .collect();
    // `--metrics`: per-run MetricsRegistry aggregation plus an engine
    // counter cross-check at Monte-Carlo scale (every run must agree
    // between the event-derived and meter speed-change counts).
    let mut ev_runs: Vec<Summary> = vec![Summary::new(); Scheme::ALL.len()];
    let mut slack_runs: Vec<Summary> = vec![Summary::new(); Scheme::ALL.len()];
    let mut counter_mismatches = 0u64;
    // Plan, engine and policies are all offline artifacts — build each
    // once, outside the realization loop (the engine resets policy state
    // at every run start, so reuse is bit-identical to rebuilding).
    let sim = setup.simulator(false);
    let mut policies: Vec<_> = Scheme::ALL.iter().map(|s| setup.policy(*s)).collect();
    for _ in 0..args.reps {
        let real = setup.sample(&etm, &mut rng);
        for (i, policy) in policies.iter_mut().enumerate() {
            let policy = policy.as_mut();
            let res = if args.metrics {
                let mut reg = mp_sim::MetricsRegistry::new();
                let res = sim
                    .run_observed(policy, &real, None, None, Some(&mut reg))
                    .map_err(|e| format!("simulation: {e}"))?;
                let total: u64 = pas_obs::EventKind::ALL
                    .iter()
                    .map(|k| reg.counter(&format!("events.{}", k.name())))
                    .sum();
                ev_runs[i].add(total as f64);
                slack_runs[i].add(reg.slack_reclaimed_ms());
                if reg.speed_changes() != res.energy.speed_changes() {
                    counter_mismatches += 1;
                }
                res
            } else {
                sim.run(policy, &real)
                    .map_err(|e| format!("simulation: {e}"))?
            };
            energies[i].add(res.total_energy());
            hists[i].add(res.total_energy());
            changes[i].add(res.energy.speed_changes() as f64);
            misses[i] += res.missed_deadline as u64;
        }
        let res = setup
            .run_oracle(&real)
            .map_err(|e| format!("simulation: {e}"))?;
        let last = Scheme::ALL.len();
        energies[last].add(res.total_energy());
        hists[last].add(res.total_energy());
        changes[last].add(res.energy.speed_changes() as f64);
        misses[last] += res.missed_deadline as u64;
    }
    let npm = energies[0].mean();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} replications on {} ({} processors, load {:.2})",
        args.reps,
        setup.model.name(),
        setup.plan.num_procs,
        setup.plan.load()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>10} {:>10} {:>14} {:>8}",
        "scheme", "norm.energy", "±95% CI", "p95", "changes/run", "misses"
    );
    let names: Vec<String> = Scheme::ALL
        .iter()
        .map(|s| s.name().to_string())
        .chain(std::iter::once("Oracle".to_string()))
        .collect();
    for (i, name) in names.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<8} {:>12.4} {:>10.4} {:>10.4} {:>14.2} {:>8}",
            name,
            energies[i].mean() / npm,
            energies[i].ci95() / npm,
            hists[i].quantile(0.95).unwrap_or(f64::NAN) / npm,
            changes[i].mean(),
            misses[i]
        );
    }
    if args.metrics {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "metrics registry aggregated over {} replications:",
            args.reps
        );
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>10} {:>14} {:>10}",
            "scheme", "events/run", "±95% CI", "slack ms/run", "±95% CI"
        );
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<8} {:>12.1} {:>10.2} {:>14.2} {:>10.2}",
                scheme.name(),
                ev_runs[i].mean(),
                ev_runs[i].ci95(),
                slack_runs[i].mean(),
                slack_runs[i].ci95()
            );
        }
        let _ = writeln!(
            out,
            "engine counter cross-check: {} runs, {} speed-change mismatches",
            args.reps * Scheme::ALL.len(),
            counter_mismatches
        );
    }
    Ok(out)
}

/// `compare --metrics --batch N`: the batched Monte-Carlo engine over
/// every scheme, reporting full distributions (quantiles and tails)
/// instead of the sequential loop's means. Realization `i` is seeded with
/// `realization_seed(--seed, i)` for *every* scheme, so the paired design
/// of the paper's figures carries over to the distributions; the oracle
/// is excluded (it needs a clairvoyant probe per realization and is a
/// bound, not a scheme).
fn compare_batch(args: &Args, setup: &Setup, batch: usize) -> Result<String, String> {
    use mp_sim::{run_batch, BatchConfig, BatchDistribution};
    let etm = ExecTimeModel::paper_defaults();
    let sim = setup.simulator(false);
    // Histogram geometry mirrors the sequential path's: NPM busy+idle
    // over the whole horizon bounds the energy axis; overruns land in the
    // makespan histogram's top bin (the exact max is tracked separately).
    let e_max = setup.plan.num_procs as f64 * setup.plan.deadline * 1.05;
    let t_max = setup.plan.deadline * 1.5;
    let mut cfg = BatchConfig::new(batch, args.seed);
    // Sampled observability: wire an event counter to every 64th
    // realization. Emission is additive, so the numbers are identical to
    // unobserved runs — this only prices the event stream.
    cfg.observe_stride = 64;
    let focus = match args.scheme {
        SchemeArg::Scheme(s) => s,
        SchemeArg::Oracle => Scheme::Gss,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "batched Monte-Carlo: {} realizations/scheme on {} ({} processors, load {:.2}), base seed {}",
        batch,
        setup.model.name(),
        setup.plan.num_procs,
        setup.plan.load(),
        args.seed
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "scheme", "mean", "p50", "p95", "p99", "max", "miss rate", "±95%"
    );
    let mut npm_mean = f64::NAN;
    let mut makespans: Vec<(String, BatchDistribution)> = Vec::new();
    let mut events_per_run = Summary::new();
    for scheme in Scheme::ALL {
        let bout = run_batch(&sim, &etm, None, || setup.policy(scheme), &cfg)
            .map_err(|e| format!("simulation: {e}"))?;
        if let Some(e) = bout.events_per_realization() {
            events_per_run.add(e);
        }
        let dist = BatchDistribution::from_output(&bout, e_max, t_max, 200)
            .ok_or_else(|| "degenerate histogram bounds".to_string())?;
        let q = |p: f64| dist.energy().quantile(p).unwrap_or(f64::NAN);
        if npm_mean.is_nan() {
            // Scheme::ALL[0] is NPM: the figures' normalization base.
            npm_mean = dist.energy().summary().mean();
        }
        let _ = writeln!(
            out,
            "{:<8} {:>10.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>10.4} {:>8.4}",
            scheme.name(),
            dist.energy().summary().mean() / npm_mean,
            q(0.5) / npm_mean,
            q(0.95) / npm_mean,
            q(0.99) / npm_mean,
            dist.energy().max() / npm_mean,
            dist.miss_rate(),
            dist.miss_ci95()
        );
        makespans.push((scheme.name().to_string(), dist));
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "makespan distribution (ms, deadline {:.1}):",
        setup.plan.deadline
    );
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "p50", "p95", "p99", "max"
    );
    for (name, dist) in &makespans {
        let q = |p: f64| dist.makespan().quantile(p).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            name,
            q(0.5),
            q(0.95),
            q(0.99),
            dist.makespan().max()
        );
    }
    if let Some((_, dist)) = makespans.iter().find(|(name, _)| *name == focus.name()) {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "per-section energy quantiles ({}, {} sections):",
            focus.name(),
            dist.sections().len()
        );
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8}",
            "section", "p50", "p95", "p99"
        );
        for (k, sec) in dist.sections().iter().enumerate() {
            let q = |p: f64| sec.quantile(p).unwrap_or(f64::NAN);
            let _ = writeln!(
                out,
                "S{:<9} {:>8.3} {:>8.3} {:>8.3}",
                k,
                q(0.5),
                q(0.95),
                q(0.99)
            );
        }
    }
    let _ = writeln!(
        out,
        "events/run {:.1} (observer sampled every {}th realization)",
        events_per_run.mean(),
        cfg.observe_stride
    );
    Ok(out)
}

fn optimal(args: &Args) -> Result<String, String> {
    use pas_core::optimal_assignment;
    let setup = build_setup(args)?;
    let n_tasks = setup.graph.num_tasks();
    let opt = optimal_assignment(
        &setup.graph,
        &setup.sections,
        &setup.plan.dispatch,
        &setup.model,
        &setup.sim_config(false),
        20_000_000,
    )
    .map_err(|e| format!("simulation: {e}"))?
    .ok_or_else(|| {
        format!(
            "search space too large ({n_tasks} tasks × {} levels — exhaustive              search is for tiny instances) or model has no discrete levels",
            setup.model.num_levels().map_or(0, |n| n)
        )
    })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exhaustive optimum over per-task level assignments          ({} assignments evaluated):",
        opt.evaluated
    );
    let mut named: Vec<(String, f64)> = opt
        .points
        .iter()
        .map(|(id, p)| (setup.graph.node(*id).name.clone(), p.speed))
        .collect();
    named.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, speed) in named {
        let _ = writeln!(out, "  {:<22} speed {:.2}", name, speed);
    }
    let _ = writeln!(
        out,
        "worst-case energy {:.3} (deadline {:.1} ms)",
        opt.worst_case_energy, setup.plan.deadline
    );
    // Compare the on-line schemes' worst-case energy on the same instance.
    let _ = writeln!(out, "\nworst-case energy over the optimum:");
    for scheme in Scheme::ALL {
        let mut worst = 0.0_f64;
        for (s, _) in setup.sections.enumerate_scenarios(&setup.graph) {
            let real = mp_sim::Realization::worst_case(&setup.graph, s);
            let energy = setup
                .run(scheme, &real)
                .map_err(|e| format!("simulation: {e}"))?
                .total_energy();
            worst = worst.max(energy);
        }
        let _ = writeln!(
            out,
            "  {:<7} {:.3}x",
            scheme.name(),
            worst / opt.worst_case_energy
        );
    }
    Ok(out)
}

/// What the summary needs to know about a run, regardless of whether it
/// was a single realization or a streamed frame sequence.
struct RunDigest {
    /// Status line(s) printed under the title.
    header: String,
    /// Engine meter total over the whole run/stream.
    total_energy: f64,
    /// Engine meter speed-change count.
    meter_speed_changes: u64,
}

/// Simulates one realization — or, with `--frames N`, a stream of `N`
/// back-to-back frames — under an [`mp_sim::Observer`] and exports the
/// event stream. `--format chrome` and `jsonl` write through streaming
/// sinks: with `--out` the file fills incrementally as the engine emits
/// events, so event memory stays O(1) however long the stream. `csv`
/// emits the derived metrics registry and `summary` (the default) a
/// human-readable digest with the per-category energy ledger and its
/// per-section slices. `--proc` and `--kinds` narrow the chrome/jsonl
/// exports; summary and csv always aggregate the full stream so their
/// totals stay meaningful.
fn trace_cmd(args: &Args) -> Result<String, String> {
    use mp_sim::MetricsRegistry;
    use pas_obs::{
        ChromeSink, EventKind, Fanout, Filtered, JsonlSink, NullObserver, Observer, RingLog,
        SectionedLedger,
    };
    if !matches!(args.format.as_str(), "chrome" | "jsonl" | "csv" | "summary") {
        return Err(format!(
            "unknown trace format '{}' (expected chrome, jsonl, csv or summary)",
            args.format
        ));
    }
    let kind_filter: Option<Vec<EventKind>> = match &args.kinds {
        Some(spec) => Some(
            spec.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    EventKind::parse(s).ok_or_else(|| {
                        let known: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
                        format!(
                            "unknown event kind '{s}' (expected one of: {})",
                            known.join(", ")
                        )
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        ),
        None => None,
    };
    precheck(args)?;
    let setup = build_setup(args)?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let etm = ExecTimeModel::paper_defaults();
    if args.frames.is_some() {
        if args.fault_plan.is_some() {
            return Err(
                "--fault-plan does not combine with --frames (fault draws are per run)".into(),
            );
        }
        if args.scheme == SchemeArg::Oracle {
            return Err(
                "--frames does not support the oracle scheme (its plan is per-realization)".into(),
            );
        }
    }
    let fault_plan = match &args.fault_plan {
        Some(path) => Some(load_fault_plan(path)?),
        None => None,
    };
    // Realizations: one per frame when streaming, one otherwise.
    let frames: Option<Vec<mp_sim::Realization>> = args
        .frames
        .map(|n| (0..n).map(|_| setup.sample(&etm, &mut rng)).collect());
    let single: Option<mp_sim::Realization> =
        frames.is_none().then(|| setup.sample(&etm, &mut rng));
    let fault_set = fault_plan
        .as_ref()
        .map(|p| p.realize(&setup.graph, args.seed));
    // One run shape behind one entry point: everything downstream only
    // sees an observer fed incrementally.
    let run_into = |observer: &mut dyn Observer| -> Result<RunDigest, String> {
        if let Some(fs) = &frames {
            let sim = setup.simulator(false);
            let mut policy = match args.scheme {
                SchemeArg::Scheme(s) => setup.policy(s),
                SchemeArg::Oracle => unreachable!("rejected above"),
            };
            let res =
                mp_sim::run_stream_observed(&sim, policy.as_mut(), fs, args.carry, Some(observer))
                    .map_err(|e| format!("simulation: {e}"))?;
            let last = res.frame_finish.last().copied().unwrap_or(0.0);
            Ok(RunDigest {
                header: format!(
                    "{} frames streamed{}, {} deadline misses, last frame finished at \
                     {:.2} ms of {:.2} ms\n",
                    fs.len(),
                    if args.carry {
                        " (DVS state carried over)"
                    } else {
                        ""
                    },
                    res.misses,
                    last,
                    setup.plan.deadline
                ),
                total_energy: res.total_energy(),
                meter_speed_changes: res.speed_changes(),
            })
        } else {
            let real = single.as_ref().expect("single-run realization");
            let res = match args.scheme {
                SchemeArg::Scheme(scheme) => {
                    let mut policy = setup.policy(scheme);
                    setup.simulator(false).run_observed(
                        policy.as_mut(),
                        real,
                        None,
                        fault_set.as_ref(),
                        Some(observer),
                    )
                }
                SchemeArg::Oracle => {
                    let mut oracle = setup.oracle(real).map_err(|e| format!("simulation: {e}"))?;
                    setup.simulator(false).run_observed(
                        &mut oracle,
                        real,
                        None,
                        fault_set.as_ref(),
                        Some(observer),
                    )
                }
            }
            .map_err(|e| format!("simulation: {e}"))?;
            let status = if res.status.met() {
                "met".to_string()
            } else {
                format!("MISSED by {:.2} ms", res.status.missed_by())
            };
            Ok(RunDigest {
                header: format!(
                    "finished at {:.2} ms of {:.2} ms — deadline {}\n",
                    res.finish_time, res.deadline, status
                ),
                total_energy: res.total_energy(),
                meter_speed_changes: res.energy.speed_changes(),
            })
        }
    };
    let scheme_name = match args.scheme {
        SchemeArg::Scheme(s) => s.name().to_string(),
        SchemeArg::Oracle => "Oracle".into(),
    };
    let (body, event_count): (String, u64) = match args.format.as_str() {
        "jsonl" => {
            if let Some(path) = &args.out {
                // Incremental path: each event hits the buffered file
                // writer the moment the engine emits it.
                let file =
                    std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
                let mut sink = Filtered::new(
                    JsonlSink::new(std::io::BufWriter::new(file)),
                    kind_filter,
                    args.proc_filter,
                );
                run_into(&mut sink)?;
                let passed = sink.passed();
                let mut w = sink
                    .into_inner()
                    .finish()
                    .map_err(|e| format!("writing {path}: {e}"))?;
                use std::io::Write as _;
                w.flush().map_err(|e| format!("writing {path}: {e}"))?;
                return Ok(format!("wrote {path} ({passed} events, streamed)\n"));
            }
            let mut sink = Filtered::new(JsonlSink::new(Vec::new()), kind_filter, args.proc_filter);
            run_into(&mut sink)?;
            let passed = sink.passed();
            let buf = sink.into_inner().finish().expect("in-memory sink");
            (String::from_utf8(buf).expect("jsonl is utf-8"), passed)
        }
        "chrome" => {
            let name_of = |n: andor_graph::NodeId| setup.graph.node(n).name.clone();
            if let Some(path) = &args.out {
                let file =
                    std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
                let mut sink = Filtered::new(
                    ChromeSink::new(std::io::BufWriter::new(file), name_of),
                    kind_filter,
                    args.proc_filter,
                );
                run_into(&mut sink)?;
                let passed = sink.passed();
                let mut w = sink
                    .into_inner()
                    .finish()
                    .map_err(|e| format!("writing {path}: {e}"))?;
                use std::io::Write as _;
                w.flush().map_err(|e| format!("writing {path}: {e}"))?;
                return Ok(format!("wrote {path} ({passed} events, streamed)\n"));
            }
            let mut sink = Filtered::new(
                ChromeSink::new(Vec::new(), name_of),
                kind_filter,
                args.proc_filter,
            );
            run_into(&mut sink)?;
            let passed = sink.passed();
            let buf = sink.into_inner().finish().expect("in-memory sink");
            (
                String::from_utf8(buf).expect("chrome trace is utf-8"),
                passed,
            )
        }
        "csv" => {
            let mut reg = MetricsRegistry::new();
            run_into(&mut reg)?;
            let total: u64 = EventKind::ALL
                .iter()
                .map(|k| reg.counter(&format!("events.{}", k.name())))
                .sum();
            (reg.to_csv(), total)
        }
        "summary" => {
            let mut reg = MetricsRegistry::new();
            let mut ledger = SectionedLedger::new();
            let mut ring = RingLog::new(4096);
            let mut filt = Filtered::new(NullObserver, kind_filter, args.proc_filter);
            let started = std::time::Instant::now();
            let digest = {
                let mut fan = Fanout::new()
                    .with(&mut reg)
                    .with(&mut ledger)
                    .with(&mut ring)
                    .with(&mut filt);
                run_into(&mut fan)?
            };
            let wall = started.elapsed();
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{} on {} ({} processors, seed {})",
                scheme_name,
                setup.model.name(),
                setup.plan.num_procs,
                args.seed
            );
            out.push_str(&digest.header);
            let _ = writeln!(
                out,
                "events: {} recorded, {} after filters",
                ring.seen(),
                filt.passed()
            );
            for kind in EventKind::ALL {
                let count = reg.counter(&format!("events.{}", kind.name()));
                if count > 0 {
                    let _ = writeln!(out, "  {:<16} {count}", kind.name());
                }
            }
            // Field names match `BENCH_<rev>.json` records so the two
            // throughput views line up.
            let _ = writeln!(
                out,
                "throughput: events_per_sec = {:.1} ({:.3} ms wall, observed)",
                ring.seen() as f64 / wall.as_secs_f64().max(1e-9),
                wall.as_secs_f64() * 1e3
            );
            let _ = writeln!(
                out,
                "live window: peak_ring_occupancy = {} of {} events buffered (bounded ring)",
                ring.peak_occupancy(),
                ring.capacity()
            );
            let _ = writeln!(
                out,
                "speed changes: {} event-derived vs {} engine meter",
                reg.speed_changes(),
                digest.meter_speed_changes
            );
            let _ = writeln!(out, "slack reclaimed: {:.2} ms", reg.slack_reclaimed_ms());
            let _ = writeln!(out, "{ledger}");
            match ledger.verify(digest.total_energy) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "ledger total {:.6} matches engine total_energy {:.6}",
                        ledger.total().total(),
                        digest.total_energy
                    );
                }
                Err(mismatch) => {
                    let _ = writeln!(out, "LEDGER MISMATCH: {mismatch}");
                }
            }
            let passed = filt.passed();
            (out, passed)
        }
        _ => unreachable!("format validated above"),
    };
    match &args.out {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!("wrote {path} ({event_count} events)\n"))
        }
        None => Ok(body),
    }
}

/// `pas bench`: runs the golden workloads (Figures 4–6 operating points,
/// both platforms, all six schemes) through the [`pas_bench`] harness,
/// prints a digest, writes `BENCH_<rev>.json`, and optionally refreshes
/// (`--update-baselines`) or checks (`--check`, error on drift) the
/// committed baselines under `--bench-dir`.
fn bench_cmd(args: &Args) -> Result<String, String> {
    let workloads: Option<Vec<String>> = args.workloads.as_ref().map(|spec| {
        spec.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    });
    // Cheap static checks over the golden workloads and both builtin
    // platforms before any timing work runs.
    {
        let mut report = pas_analyze::Report::new();
        for w in &pas_bench::GOLDEN_WORKLOADS {
            if let Some(sel) = &workloads {
                if !sel.iter().any(|s| s == w.name) {
                    continue;
                }
            }
            let g = w.graph().map_err(|e| format!("bench: {e}"))?;
            report.merge(pas_analyze::check_graph(&g, w.name));
        }
        for model in [
            dvfs_power::ProcessorModel::transmeta5400(),
            dvfs_power::ProcessorModel::xscale(),
        ] {
            let name = model.name().to_string();
            report.merge(pas_analyze::check_model(&model, &name));
        }
        if report.has_errors() {
            return Err(format!(
                "pre-bench check failed:\n{}",
                report.render_human().trim_end()
            ));
        }
    }
    let opts = pas_bench::BenchOptions {
        reps: args.reps,
        seed: args.seed,
        rev: pas_bench::detect_rev(),
        workloads,
        ..pas_bench::BenchOptions::default()
    };
    let out = pas_bench::run_bench(&opts).map_err(|e| format!("bench: {e}"))?;
    let dir = std::path::PathBuf::from(
        args.bench_dir
            .as_deref()
            .unwrap_or(pas_bench::harness::DEFAULT_BASELINE_DIR),
    );
    let mut text = String::new();
    let _ = writeln!(
        text,
        "pas bench — rev {}, {} records, {} timing reps each",
        out.report.rev,
        out.report.records.len(),
        args.reps
    );
    let _ = writeln!(
        text,
        "{:<6} {:<18} {:<6} {:>9} {:>11} {:>7} {:>12} {:>9}",
        "wkld", "platform", "scheme", "wall ms", "kevents/s", "events", "energy mJ", "sections"
    );
    for rec in &out.report.records {
        let _ = writeln!(
            text,
            "{:<6} {:<18} {:<6} {:>9.2} {:>11.1} {:>7} {:>12.4} {:>9}",
            rec.workload,
            rec.platform,
            rec.scheme,
            rec.wall_ms,
            rec.events_per_sec / 1e3,
            rec.events,
            rec.energy_mj,
            rec.sections.len()
        );
    }
    if !out.report.batch.is_empty() {
        let _ = writeln!(
            text,
            "batched Monte-Carlo engine vs sequential observed loop (informational):"
        );
        for b in &out.report.batch {
            let _ = writeln!(
                text,
                "  {:<6} {:<18} {:<6} {:>6} runs {:>10.0} runs/s (seq {:>8.0}) {:>6.1}x {:>9.1} kevents/s",
                b.workload,
                b.platform,
                b.scheme,
                b.realizations,
                b.realizations_per_sec,
                b.sequential_realizations_per_sec,
                b.speedup,
                b.events_per_sec / 1e3
            );
        }
    }
    if !out.report.offline.is_empty() {
        let _ = writeln!(text, "off-line phase wall time (span profiler):");
        for b in &out.report.offline {
            let total: f64 = b.spans.iter().map(|s| s.total_ms).sum();
            let _ = writeln!(
                text,
                "  {} on {} ({:.3} ms across {} span names):",
                b.workload,
                b.platform,
                total,
                b.spans.len()
            );
            for s in &b.spans {
                let _ = writeln!(
                    text,
                    "    {:<28} {:>4} call(s) {:>10.3} ms",
                    s.name, s.calls, s.total_ms
                );
            }
        }
    }
    if args.update_baselines {
        let written = pas_bench::write_baselines(&out, &dir).map_err(|e| format!("bench: {e}"))?;
        for path in written {
            let _ = writeln!(text, "wrote {path}");
        }
    }
    let report_path = match &args.out {
        Some(path) => {
            std::fs::write(path, pas_bench::harness::report_json(&out.report))
                .map_err(|e| format!("writing {path}: {e}"))?;
            path.clone()
        }
        None => pas_bench::write_report(&out.report, std::path::Path::new("."))
            .map_err(|e| format!("bench: {e}"))?
            .display()
            .to_string(),
    };
    let _ = writeln!(text, "wrote {report_path}");
    if args.check {
        let drifts =
            pas_bench::check_against_baselines(&out, &dir).map_err(|e| format!("bench: {e}"))?;
        if drifts.is_empty() {
            let _ = writeln!(
                text,
                "baseline check passed ({} records within tolerance)",
                out.report.records.len()
            );
        } else {
            return Err(format!(
                "baseline drift detected ({} deviations):\n  {}",
                drifts.len(),
                drifts.join("\n  ")
            ));
        }
    }
    Ok(text)
}

fn dot(args: &Args) -> Result<String, String> {
    let graph = load_app(args)?;
    Ok(to_dot(&graph, &args.app))
}

fn export(args: &Args) -> Result<String, String> {
    let graph = load_app(args)?;
    let path = args.out.as_deref().ok_or("export needs --out FILE")?;
    let json = serde_json::to_string_pretty(&graph).map_err(|e| format!("serializing: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    Ok(format!(
        "wrote {} ({} nodes, {} tasks)\n",
        path,
        graph.len(),
        graph.num_tasks()
    ))
}
