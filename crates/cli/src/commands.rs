//! Command implementations. Every command returns the text to print, so
//! the whole tool is unit-testable without spawning processes.

use crate::args::{Args, Command, SchemeArg};
use crate::source::{load_app, load_fault_plan, load_model};
use andor_graph::{app_profile, to_dot, SectionGraph};
use mp_sim::trace::{lane_stats, power_profile, render_gantt, GanttOptions};
use mp_sim::ExecTimeModel;
use pas_core::{Scheme, Setup, SetupError};
use pas_stats::{Histogram, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Dispatches a parsed command line.
pub fn execute(args: &Args) -> Result<String, String> {
    if args.fault_plan.is_some() && args.command != Command::Run && args.command != Command::Trace {
        return Err("--fault-plan applies only to `run` and `trace`".into());
    }
    match args.command {
        Command::Inspect => inspect(args),
        Command::Plan => plan(args),
        Command::Run => run_one(args),
        Command::Compare => compare(args),
        Command::Dot => dot(args),
        Command::Optimal => optimal(args),
        Command::Export => export(args),
        Command::Trace => trace_cmd(args),
    }
}

fn build_setup(args: &Args) -> Result<Setup, String> {
    let graph = load_app(args)?;
    let model = load_model(&args.model)?;
    let result = match (args.deadline, args.load) {
        (Some(d), None) => Setup::new(graph, model, args.procs, d),
        (None, Some(l)) => Setup::for_load(graph, model, args.procs, l),
        (None, None) => Setup::for_load(graph, model, args.procs, 0.5),
        (Some(_), Some(_)) => unreachable!("rejected at parse time"),
    };
    result.map_err(|e| match e {
        SetupError::Offline(pas_core::OfflineError::Infeasible {
            worst_finish,
            deadline,
        }) => format!(
            "infeasible: the worst case needs {worst_finish:.2} ms but the \
             deadline is {deadline:.2} ms"
        ),
        other => other.to_string(),
    })
}

fn inspect(args: &Args) -> Result<String, String> {
    let graph = load_app(args)?;
    let sections = SectionGraph::build(&graph).map_err(|e| format!("section structure: {e}"))?;
    let profile = app_profile(&graph, &sections);
    let mut out = String::new();
    let _ = writeln!(out, "application: {}", args.app);
    let _ = writeln!(
        out,
        "  nodes: {} ({} tasks, {} OR, {} AND/sync)",
        graph.len(),
        graph.num_tasks(),
        graph.num_or_nodes(),
        graph.len() - graph.num_tasks() - graph.num_or_nodes()
    );
    let _ = writeln!(out, "  sections: {}", sections.len());
    let _ = writeln!(out, "  scenarios: {}", profile.scenarios);
    let _ = writeln!(
        out,
        "  work (WCET): expected {:.1} ms, range {:.1}..{:.1} ms",
        profile.expected_wcet, profile.wcet_range.0, profile.wcet_range.1
    );
    let _ = writeln!(
        out,
        "  work (ACET): expected {:.1} ms",
        profile.expected_acet
    );
    let _ = writeln!(
        out,
        "  worst critical path: {:.1} ms (mean parallelism {:.2})",
        profile.worst_critical_path, profile.mean_parallelism
    );
    let _ = writeln!(out, "\nsections (chain order):");
    for (i, section) in sections.sections().iter().enumerate() {
        let names: Vec<&str> = section
            .nodes
            .iter()
            .map(|&n| graph.node(n).name.as_str())
            .take(8)
            .collect();
        let ellipsis = if section.nodes.len() > 8 { ", …" } else { "" };
        let exit = section
            .exit_or
            .map(|o| graph.node(o).name.clone())
            .unwrap_or_else(|| "end".into());
        let _ = writeln!(
            out,
            "  s{i} depth {}: {} node(s) [{}{}] -> {}",
            section.depth,
            section.nodes.len(),
            names.join(", "),
            ellipsis,
            exit
        );
    }
    Ok(out)
}

fn plan(args: &Args) -> Result<String, String> {
    let setup = build_setup(args)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "off-line phase — {} processors, deadline {:.2} ms, model {}",
        setup.plan.num_procs,
        setup.plan.deadline,
        setup.model.name()
    );
    let _ = writeln!(
        out,
        "  Tw (worst finish) = {:.2} ms   Ta (average finish) = {:.2} ms",
        setup.plan.worst_total, setup.plan.avg_total
    );
    let _ = writeln!(
        out,
        "  load = {:.3}   static slack = {:.2} ms",
        setup.plan.load(),
        setup.plan.static_slack()
    );
    let mut pmps: Vec<_> = setup.plan.branch_worst.iter().collect();
    pmps.sort_by_key(|((or, k), _)| (*or, *k));
    let _ = writeln!(out, "\nPMP statistics (per OR branch):");
    for ((or, k), tw) in pmps {
        let ta = setup.plan.branch_avg[&(*or, *k)];
        let _ = writeln!(
            out,
            "  {} branch {k}: Tw_k = {tw:.2} ms, Ta_k = {ta:.2} ms",
            setup.graph.node(*or).name
        );
    }
    let _ = writeln!(
        out,
        "\ncanonical schedule (per section, worst case at full speed):"
    );
    for (sid, order) in setup.plan.dispatch.per_section.iter().enumerate() {
        if order.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  section s{sid} (length {:.2} ms):",
            setup.plan.section_worst_len[sid]
        );
        for (&node, &start) in order.iter().zip(&setup.plan.canonical_start_rel[sid]) {
            let n = setup.graph.node(node);
            if !n.kind.is_computation() {
                continue;
            }
            let lst = setup.plan.lst[node.index()].expect("computation node");
            let _ = writeln!(
                out,
                "    {:<22} canonical [{:>7.2}, {:>7.2}]   latest start {:>8.2} ms",
                n.name,
                start,
                start + n.kind.wcet(),
                lst
            );
        }
    }
    Ok(out)
}

fn run_one(args: &Args) -> Result<String, String> {
    let setup = build_setup(args)?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    let fault_plan = match &args.fault_plan {
        Some(path) => Some(load_fault_plan(path)?),
        None => None,
    };
    // The seed doubles as the fault plan's run index, so `--seed` varies
    // the drawn faults alongside the realization.
    let fault_set = fault_plan
        .as_ref()
        .map(|p| p.realize(&setup.graph, args.seed));
    let res = match args.scheme {
        SchemeArg::Scheme(scheme) => {
            let mut policy = setup.policy(scheme);
            setup
                .simulator(true)
                .run_full(policy.as_mut(), &real, None, fault_set.as_ref())
        }
        SchemeArg::Oracle => {
            let mut oracle = setup
                .oracle(&real)
                .map_err(|e| format!("simulation: {e}"))?;
            setup
                .simulator(true)
                .run_full(&mut oracle, &real, None, fault_set.as_ref())
        }
    }
    .map_err(|e| format!("simulation: {e}"))?;
    let scheme_name = match args.scheme {
        SchemeArg::Scheme(s) => s.name().to_string(),
        SchemeArg::Oracle => "Oracle".into(),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} ({} processors, seed {})",
        scheme_name,
        setup.model.name(),
        setup.plan.num_procs,
        args.seed
    );
    let status = if res.status.met() {
        "met".to_string()
    } else {
        format!("MISSED by {:.2} ms", res.status.missed_by())
    };
    let _ = writeln!(
        out,
        "finished at {:.2} ms of {:.2} ms — deadline {}",
        res.finish_time, res.deadline, status
    );
    if fault_plan.is_some() {
        let f = res.faults;
        let _ = writeln!(
            out,
            "faults: {} injected ({} overruns, {} speed failures, {} stalls), \
             {} detected, {} recoveries, recovery energy {:.3}",
            f.total_injected(),
            f.overruns_injected,
            f.speed_failures_injected,
            f.stalls_injected,
            f.overruns_detected,
            f.recoveries,
            f.recovery_energy
        );
    }
    let _ = writeln!(
        out,
        "energy {:.3} (busy {:.3}, idle {:.3}, transitions {:.3}), {} speed changes",
        res.total_energy(),
        res.energy.busy_energy(),
        res.energy.idle_energy(),
        res.energy.transition_energy(),
        res.energy.speed_changes()
    );
    let trace = res.trace.as_ref().expect("tracing enabled");
    for lane in lane_stats(
        trace,
        setup.plan.num_procs,
        res.deadline.max(res.finish_time),
    )
    .map_err(|e| format!("trace analysis: {e}"))?
    {
        let _ = writeln!(
            out,
            "  p{}: {} tasks, busy {:.1} ms, utilization {:.0}%, mean speed {:.2}",
            lane.proc,
            lane.tasks,
            lane.busy,
            lane.utilization * 100.0,
            lane.mean_speed
        );
    }
    if args.gantt {
        let _ = writeln!(out);
        let opts = GanttOptions {
            width: 72,
            deadline: Some(res.deadline),
        };
        out.push_str(&render_gantt(
            trace,
            &setup.graph,
            setup.plan.num_procs,
            &opts,
        ));
        // Dynamic-power timeline under the Gantt: mean normalized power
        // per window, rendered as deciles of the theoretical maximum
        // (num_procs · P_max).
        let horizon = res.deadline.max(res.finish_time);
        let powers: Vec<f64> = trace
            .iter()
            .map(|e| setup.model.quantize_up(e.speed).power)
            .collect();
        let profile = power_profile(trace, &powers, 72, horizon)
            .map_err(|e| format!("trace analysis: {e}"))?;
        let row: String = profile
            .iter()
            .map(|p| {
                let decile = (p / setup.plan.num_procs as f64 * 10.0)
                    .round()
                    .clamp(0.0, 9.0) as u8;
                (b'0' + decile) as char
            })
            .collect();
        let _ = writeln!(out, "pw {row}");
    }
    Ok(out)
}

fn compare(args: &Args) -> Result<String, String> {
    let setup = build_setup(args)?;
    let etm = ExecTimeModel::paper_defaults();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let n = Scheme::ALL.len() + 1;
    let mut energies: Vec<Summary> = vec![Summary::new(); n];
    let mut changes: Vec<Summary> = vec![Summary::new(); n];
    let mut misses = vec![0u64; n];
    // Upper bound for the energy histograms: NPM busy+idle over the whole
    // horizon on every processor.
    let e_max = setup.plan.num_procs as f64 * setup.plan.deadline * 1.05;
    let mut hists: Vec<Histogram> = (0..n)
        .map(|_| Histogram::new(0.0, e_max, 200).expect("valid range"))
        .collect();
    for _ in 0..args.reps {
        let real = setup.sample(&etm, &mut rng);
        for (i, scheme) in Scheme::ALL.iter().enumerate() {
            let res = setup
                .run(*scheme, &real)
                .map_err(|e| format!("simulation: {e}"))?;
            energies[i].add(res.total_energy());
            hists[i].add(res.total_energy());
            changes[i].add(res.energy.speed_changes() as f64);
            misses[i] += res.missed_deadline as u64;
        }
        let res = setup
            .run_oracle(&real)
            .map_err(|e| format!("simulation: {e}"))?;
        let last = Scheme::ALL.len();
        energies[last].add(res.total_energy());
        hists[last].add(res.total_energy());
        changes[last].add(res.energy.speed_changes() as f64);
        misses[last] += res.missed_deadline as u64;
    }
    let npm = energies[0].mean();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} replications on {} ({} processors, load {:.2})",
        args.reps,
        setup.model.name(),
        setup.plan.num_procs,
        setup.plan.load()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>10} {:>10} {:>14} {:>8}",
        "scheme", "norm.energy", "±95% CI", "p95", "changes/run", "misses"
    );
    let names: Vec<String> = Scheme::ALL
        .iter()
        .map(|s| s.name().to_string())
        .chain(std::iter::once("Oracle".to_string()))
        .collect();
    for (i, name) in names.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<8} {:>12.4} {:>10.4} {:>10.4} {:>14.2} {:>8}",
            name,
            energies[i].mean() / npm,
            energies[i].ci95() / npm,
            hists[i].quantile(0.95).unwrap_or(f64::NAN) / npm,
            changes[i].mean(),
            misses[i]
        );
    }
    Ok(out)
}

fn optimal(args: &Args) -> Result<String, String> {
    use pas_core::optimal_assignment;
    let setup = build_setup(args)?;
    let n_tasks = setup.graph.num_tasks();
    let opt = optimal_assignment(
        &setup.graph,
        &setup.sections,
        &setup.plan.dispatch,
        &setup.model,
        &setup.sim_config(false),
        20_000_000,
    )
    .map_err(|e| format!("simulation: {e}"))?
    .ok_or_else(|| {
        format!(
            "search space too large ({n_tasks} tasks × {} levels — exhaustive              search is for tiny instances) or model has no discrete levels",
            setup.model.num_levels().map_or(0, |n| n)
        )
    })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exhaustive optimum over per-task level assignments          ({} assignments evaluated):",
        opt.evaluated
    );
    let mut named: Vec<(String, f64)> = opt
        .points
        .iter()
        .map(|(id, p)| (setup.graph.node(*id).name.clone(), p.speed))
        .collect();
    named.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, speed) in named {
        let _ = writeln!(out, "  {:<22} speed {:.2}", name, speed);
    }
    let _ = writeln!(
        out,
        "worst-case energy {:.3} (deadline {:.1} ms)",
        opt.worst_case_energy, setup.plan.deadline
    );
    // Compare the on-line schemes' worst-case energy on the same instance.
    let _ = writeln!(out, "\nworst-case energy over the optimum:");
    for scheme in Scheme::ALL {
        let mut worst = 0.0_f64;
        for (s, _) in setup.sections.enumerate_scenarios(&setup.graph) {
            let real = mp_sim::Realization::worst_case(&setup.graph, s);
            let energy = setup
                .run(scheme, &real)
                .map_err(|e| format!("simulation: {e}"))?
                .total_energy();
            worst = worst.max(energy);
        }
        let _ = writeln!(
            out,
            "  {:<7} {:.3}x",
            scheme.name(),
            worst / opt.worst_case_energy
        );
    }
    Ok(out)
}

/// Simulates one realization under an [`mp_sim::Observer`] and exports
/// the recorded event stream. `--format chrome` emits a Perfetto-loadable
/// Chrome trace-event JSON document, `jsonl` the raw events one per line,
/// `csv` the derived metrics registry, and `summary` (the default) a
/// human-readable digest with the energy-ledger breakdown. `--proc` and
/// `--kinds` narrow the chrome/jsonl exports; summary and csv always
/// aggregate the full stream so their totals stay meaningful.
fn trace_cmd(args: &Args) -> Result<String, String> {
    use mp_sim::{EnergyLedger, EventLog, MetricsRegistry};
    use pas_obs::{export as obs_export, EventKind};
    let setup = build_setup(args)?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    let fault_plan = match &args.fault_plan {
        Some(path) => Some(load_fault_plan(path)?),
        None => None,
    };
    let fault_set = fault_plan
        .as_ref()
        .map(|p| p.realize(&setup.graph, args.seed));
    let mut log = EventLog::new();
    let res = match args.scheme {
        SchemeArg::Scheme(scheme) => {
            let mut policy = setup.policy(scheme);
            setup.simulator(false).run_observed(
                policy.as_mut(),
                &real,
                None,
                fault_set.as_ref(),
                Some(&mut log),
            )
        }
        SchemeArg::Oracle => {
            let mut oracle = setup
                .oracle(&real)
                .map_err(|e| format!("simulation: {e}"))?;
            setup.simulator(false).run_observed(
                &mut oracle,
                &real,
                None,
                fault_set.as_ref(),
                Some(&mut log),
            )
        }
    }
    .map_err(|e| format!("simulation: {e}"))?;
    let events = log.into_events();
    let kind_filter: Option<Vec<EventKind>> = match &args.kinds {
        Some(spec) => Some(
            spec.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    EventKind::parse(s).ok_or_else(|| {
                        let known: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
                        format!(
                            "unknown event kind '{s}' (expected one of: {})",
                            known.join(", ")
                        )
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        ),
        None => None,
    };
    let filtered: Vec<mp_sim::SimEvent> = events
        .iter()
        .filter(|ev| {
            kind_filter
                .as_ref()
                .is_none_or(|ks| ks.contains(&ev.kind()))
                && args.proc_filter.is_none_or(|p| ev.proc() == Some(p))
        })
        .cloned()
        .collect();
    let body = match args.format.as_str() {
        "chrome" => obs_export::chrome_trace(&filtered, |n| setup.graph.node(n).name.clone()),
        "jsonl" => obs_export::to_jsonl(&filtered),
        "csv" => MetricsRegistry::from_events(&events).to_csv(),
        "summary" => {
            let reg = MetricsRegistry::from_events(&events);
            let ledger = EnergyLedger::from_events(&events);
            let scheme_name = match args.scheme {
                SchemeArg::Scheme(s) => s.name().to_string(),
                SchemeArg::Oracle => "Oracle".into(),
            };
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{} on {} ({} processors, seed {})",
                scheme_name,
                setup.model.name(),
                setup.plan.num_procs,
                args.seed
            );
            let status = if res.status.met() {
                "met".to_string()
            } else {
                format!("MISSED by {:.2} ms", res.status.missed_by())
            };
            let _ = writeln!(
                out,
                "finished at {:.2} ms of {:.2} ms — deadline {}",
                res.finish_time, res.deadline, status
            );
            let _ = writeln!(
                out,
                "events: {} recorded, {} after filters",
                events.len(),
                filtered.len()
            );
            for kind in EventKind::ALL {
                let count = reg.counter(&format!("events.{}", kind.name()));
                if count > 0 {
                    let _ = writeln!(out, "  {:<16} {count}", kind.name());
                }
            }
            let _ = writeln!(
                out,
                "speed changes: {} event-derived vs {} engine meter",
                reg.speed_changes(),
                res.energy.speed_changes()
            );
            let _ = writeln!(out, "slack reclaimed: {:.2} ms", reg.slack_reclaimed_ms());
            let _ = writeln!(out, "{ledger}");
            match ledger.verify(res.total_energy()) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "ledger total {:.6} matches engine total_energy {:.6}",
                        ledger.total(),
                        res.total_energy()
                    );
                }
                Err(mismatch) => {
                    let _ = writeln!(out, "LEDGER MISMATCH: {mismatch}");
                }
            }
            out
        }
        other => {
            return Err(format!(
                "unknown trace format '{other}' (expected chrome, jsonl, csv or summary)"
            ))
        }
    };
    match &args.out {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!("wrote {path} ({} events)\n", filtered.len()))
        }
        None => Ok(body),
    }
}

fn dot(args: &Args) -> Result<String, String> {
    let graph = load_app(args)?;
    Ok(to_dot(&graph, &args.app))
}

fn export(args: &Args) -> Result<String, String> {
    let graph = load_app(args)?;
    let path = args.out.as_deref().ok_or("export needs --out FILE")?;
    let json = serde_json::to_string_pretty(&graph).map_err(|e| format!("serializing: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    Ok(format!(
        "wrote {} ({} nodes, {} tasks)\n",
        path,
        graph.len(),
        graph.num_tasks()
    ))
}
