//! Benchmarks for the paper's Tables 1 & 2: speed/voltage level lookup
//! (`quantize_up` is on the per-dispatch hot path of every policy).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dvfs_power::ProcessorModel;

fn table_lookup(c: &mut Criterion) {
    let tm = ProcessorModel::transmeta5400();
    let xs = ProcessorModel::xscale();
    let mut g = c.benchmark_group("table_lookup");
    g.bench_function("table1_transmeta_quantize", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += tm.quantize_up(black_box(i as f64 / 100.0)).power;
            }
            acc
        })
    });
    g.bench_function("table2_xscale_quantize", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += xs.quantize_up(black_box(i as f64 / 100.0)).power;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, table_lookup);
criterion_main!(benches);
