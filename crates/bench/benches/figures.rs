//! Benchmarks that regenerate (reduced-replication versions of) the
//! paper's Figures 4, 5 and 6.

use criterion::{criterion_group, criterion_main, Criterion};
use pas_bench::bench_config;
use pas_experiments::figures::{fig_energy_vs_alpha, fig_energy_vs_load};
use pas_experiments::Platform;

fn fig4_energy_vs_load(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("fig4_energy_vs_load");
    g.sample_size(10);
    for platform in [Platform::Transmeta, Platform::XScale] {
        g.bench_function(platform.name(), |b| {
            b.iter(|| {
                let out = fig_energy_vs_load(platform, 2, &cfg);
                assert_eq!(out.total_misses, 0);
                out
            })
        });
    }
    g.finish();
}

fn fig5_six_procs(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("fig5_six_procs");
    g.sample_size(10);
    for platform in [Platform::Transmeta, Platform::XScale] {
        g.bench_function(platform.name(), |b| {
            b.iter(|| {
                let out = fig_energy_vs_load(platform, 6, &cfg);
                assert_eq!(out.total_misses, 0);
                out
            })
        });
    }
    g.finish();
}

fn fig6_energy_vs_alpha(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("fig6_energy_vs_alpha");
    g.sample_size(10);
    for platform in [Platform::Transmeta, Platform::XScale] {
        g.bench_function(platform.name(), |b| {
            b.iter(|| {
                let out = fig_energy_vs_alpha(platform, &cfg);
                assert_eq!(out.total_misses, 0);
                out
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    fig4_energy_vs_load,
    fig5_six_procs,
    fig6_energy_vs_alpha
);
criterion_main!(benches);
