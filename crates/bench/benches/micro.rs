//! Micro-benchmarks of the scheduler machinery: the off-line phase, one
//! on-line run per scheme, and realization sampling.

use andor_graph::SectionGraph;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mp_sim::ExecTimeModel;
use pas_bench::synthetic_setup;
use pas_core::{OfflinePlan, Scheme};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn offline_phase(c: &mut Criterion) {
    let g = workloads::synthetic_app().lower().unwrap();
    let sg = SectionGraph::build(&g).unwrap();
    c.bench_function("offline_plan_build", |b| {
        b.iter(|| OfflinePlan::build(&g, &sg, 2, 100.0).unwrap())
    });
}

fn online_run(c: &mut Criterion) {
    let setup = synthetic_setup().expect("bench setup");
    let mut g = c.benchmark_group("online_run");
    for scheme in Scheme::ALL {
        g.bench_function(scheme.name(), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter_batched(
                || setup.sample(&ExecTimeModel::paper_defaults(), &mut rng),
                |real| setup.run(scheme, &real).expect("run succeeds"),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn sampling(c: &mut Criterion) {
    let setup = synthetic_setup().expect("bench setup");
    c.bench_function("realization_sample", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| setup.sample(&ExecTimeModel::paper_defaults(), &mut rng))
    });
}

fn large_instance(c: &mut Criterion) {
    // The big ATR configuration from tests/scale.rs: ~400 tasks.
    let params = workloads::AtrParams {
        max_rois: 8,
        roi_probs: vec![0.20, 0.20, 0.15, 0.13, 0.12, 0.10, 0.06, 0.04],
        num_templates: 8,
        frames: 2,
        ..workloads::AtrParams::default()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let g = params.build_jittered(&mut rng).unwrap().lower().unwrap();
    let sg = SectionGraph::build(&g).unwrap();
    let mut group = c.benchmark_group("large_instance");
    group.bench_function("offline_plan_400_tasks", |b| {
        b.iter(|| OfflinePlan::build(&g, &sg, 4, 10_000.0).unwrap())
    });
    let setup =
        pas_core::Setup::for_load(g.clone(), dvfs_power::ProcessorModel::xscale(), 4, 0.7).unwrap();
    group.bench_function("gss_run_400_tasks", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter_batched(
            || setup.sample(&ExecTimeModel::paper_defaults(), &mut rng),
            |real| setup.run(Scheme::Gss, &real).expect("run succeeds"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, offline_phase, online_run, sampling, large_instance);
criterion_main!(benches);
