//! Benchmarks for the ablation studies (the paper's stated future work:
//! varying S_min/S_max and the number of speed levels; plus overhead and
//! processor-count sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use pas_bench::bench_config;
use pas_experiments::figures::{
    ablation_levels, ablation_overhead, ablation_procs, ablation_smin, energy_breakdown,
    oracle_gap_vs_load,
};
use pas_experiments::Platform;

fn ablation_benches(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("ablation_smin", |b| {
        b.iter(|| assert_eq!(ablation_smin(&cfg).total_misses, 0))
    });
    g.bench_function("ablation_levels", |b| {
        b.iter(|| assert_eq!(ablation_levels(&cfg).total_misses, 0))
    });
    g.bench_function("ablation_overhead", |b| {
        b.iter(|| assert_eq!(ablation_overhead(Platform::XScale, &cfg).total_misses, 0))
    });
    g.bench_function("ablation_procs", |b| {
        b.iter(|| assert_eq!(ablation_procs(Platform::Transmeta, &cfg).total_misses, 0))
    });
    g.bench_function("oracle_gap", |b| {
        b.iter(|| oracle_gap_vs_load(Platform::XScale, 2, &cfg))
    });
    g.bench_function("energy_breakdown", |b| {
        b.iter(|| energy_breakdown(Platform::Transmeta, 2, 0.5, &cfg))
    });
    g.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
