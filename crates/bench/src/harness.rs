//! The `pas bench` harness: golden workloads, captured metrics, and
//! regression-tracked baselines.
//!
//! Criterion benches (see `benches/`) answer "how fast is the machinery
//! on my machine right now?"; this module answers the complementary
//! question "did the *numbers* move?". It runs a small set of golden
//! workloads — the paper figures' operating points — under every scheme
//! on both platforms, capturing:
//!
//! * wall time and events/second over a timing loop (informational —
//!   machine-dependent, never compared);
//! * deterministic quantities from one seeded, observed run: event
//!   count, peak bounded-ring occupancy, finish time, total energy,
//!   speed changes, the per-category [`EnergyLedger`], and per-section
//!   slices from a [`SectionedLedger`];
//! * the run's full [`MetricsRegistry`] rendered as CSV;
//! * a per-(workload, platform) wall-time breakdown of the off-line
//!   phase from the [`pas_obs::profile`] span profiler (informational —
//!   the span *shape* is deterministic, the times are not). The symbolic
//!   bounds derivation ([`pas_analyze::analyze_bounds`]) runs inside the
//!   same profiled window, so its `check.bounds` span is recorded next
//!   to the setup spans.
//!
//! [`write_baselines`] commits the deterministic portion under
//! `results/baselines/`; [`check_against_baselines`] re-runs the golden
//! workloads and reports every value that drifted beyond a relative
//! tolerance, so `pas bench --check` can gate CI on numeric regressions
//! the same way the golden-trace tests gate event streams.

use mp_sim::{ExecTimeModel, SimError};
use pas_core::{Scheme, Setup, SetupError};
use pas_experiments::figures::{atr_app, Platform};
use pas_experiments::traces::slug;
use pas_obs::{EnergyLedger, Fanout, MetricsRegistry, RingLog, SectionedLedger};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use std::time::Instant;

/// Relative tolerance for baseline comparison. Golden workloads are
/// bit-deterministic, so the tolerance only needs to absorb benign
/// float-formatting round trips.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Capacity of the bounded ring used to demonstrate O(1) event memory
/// while still counting every event.
pub const RING_CAPACITY: usize = 512;

/// File name of the JSON baseline inside the baseline directory.
pub const BASELINE_FILE: &str = "bench_baseline.json";

/// Default baseline directory, relative to the repository root.
pub const DEFAULT_BASELINE_DIR: &str = "results/baselines";

/// Everything that can go wrong while benching.
#[derive(Debug)]
pub enum BenchError {
    /// A golden workload's graph failed to build or lower.
    Workload(String),
    /// The platform/load setup was infeasible.
    Setup(SetupError),
    /// A simulation run failed.
    Sim(SimError),
    /// Reading or writing reports/baselines failed.
    Io(std::io::Error),
    /// A baseline file was missing or malformed.
    Baseline(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Workload(m) => write!(f, "workload: {m}"),
            BenchError::Setup(e) => write!(f, "setup: {e}"),
            BenchError::Sim(e) => write!(f, "simulation: {e}"),
            BenchError::Io(e) => write!(f, "io: {e}"),
            BenchError::Baseline(m) => write!(f, "baseline: {m}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<SetupError> for BenchError {
    fn from(e: SetupError) -> Self {
        BenchError::Setup(e)
    }
}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        BenchError::Sim(e)
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// A golden workload: one figure operating point.
#[derive(Debug, Clone, Copy)]
pub struct GoldenWorkload {
    /// Short name used in record keys and baseline file names.
    pub name: &'static str,
    /// Processor count.
    pub num_procs: usize,
    /// Load (deadline = critical path / load).
    pub load: f64,
}

/// The golden set: Figure 4 (ATR, 2 procs), Figure 5 (ATR, 6 procs) and
/// Figure 6 (synthetic app at α = 0.5, 2 procs), all at load 0.5.
pub const GOLDEN_WORKLOADS: [GoldenWorkload; 3] = [
    GoldenWorkload {
        name: "fig4",
        num_procs: 2,
        load: 0.5,
    },
    GoldenWorkload {
        name: "fig5",
        num_procs: 6,
        load: 0.5,
    },
    GoldenWorkload {
        name: "fig6",
        num_procs: 2,
        load: 0.5,
    },
];

impl GoldenWorkload {
    /// Builds the workload's application graph.
    pub fn graph(&self) -> Result<andor_graph::AndOrGraph, BenchError> {
        match self.name {
            "fig4" | "fig5" => Ok(atr_app()),
            "fig6" => workloads::synthetic_app_alpha(0.5)
                .map_err(|e| BenchError::Workload(format!("fig6 synthetic app: {e}")))?
                .lower()
                .map_err(|e| BenchError::Workload(format!("fig6 synthetic app: {e}"))),
            other => Err(BenchError::Workload(format!("unknown workload: {other}"))),
        }
    }
}

/// One section's attributed energy inside a [`BenchRecord`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SectionRecord {
    /// Section key rendered for humans (`root`, `n7.b1`, ...).
    pub section: String,
    /// The section's category-split ledger.
    pub ledger: EnergyLedger,
}

/// One (workload, platform, scheme) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Golden workload name (`fig4`, ...).
    pub workload: String,
    /// Platform slug (`transmeta-tm5400`, `intel-xscale`).
    pub platform: String,
    /// Scheme slug (`npm`, `ss1`, ...).
    pub scheme: String,
    /// Timing-loop replications (informational).
    pub reps: usize,
    /// Timing-loop wall time in milliseconds (informational, never
    /// compared: machine-dependent).
    pub wall_ms: f64,
    /// Observed engine event throughput (informational).
    pub events_per_sec: f64,
    /// Events emitted by the seeded run (deterministic).
    pub events: u64,
    /// Peak occupancy of the bounded event ring — stays at most
    /// [`RING_CAPACITY`] no matter how long the run (deterministic).
    pub peak_ring_occupancy: usize,
    /// Finish time of the seeded run (ms, deterministic).
    pub finish_ms: f64,
    /// Total energy of the seeded run (mJ, deterministic).
    pub energy_mj: f64,
    /// Voltage/frequency transitions in the seeded run (deterministic).
    pub speed_changes: u64,
    /// Deadline misses in the seeded run (deterministic; 0 for the
    /// guaranteed schemes).
    pub misses: u64,
    /// Per-category energy attribution (deterministic).
    pub ledger: EnergyLedger,
    /// Per-section energy attribution, merged over repeated keys
    /// (deterministic).
    pub sections: Vec<SectionRecord>,
}

impl BenchRecord {
    /// The record's identity inside a report.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.platform, self.scheme)
    }
}

/// One span family's aggregate inside an [`OfflineBreakdown`]: every
/// profiler span recorded under the name, summed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineSpanStat {
    /// Span name from [`pas_obs::profile::names`].
    pub name: String,
    /// Spans recorded under the name (deterministic shape).
    pub calls: u64,
    /// Total wall time across those spans (ms; informational,
    /// machine-dependent, never compared).
    pub total_ms: f64,
}

/// Per-(workload, platform) wall-time breakdown of the off-line phase,
/// captured by the span profiler around the `Setup` construction the
/// schemes share.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineBreakdown {
    /// Golden workload name (`fig4`, ...).
    pub workload: String,
    /// Platform slug (`transmeta-tm5400`, `intel-xscale`).
    pub platform: String,
    /// Aggregated spans, sorted by name.
    pub spans: Vec<OfflineSpanStat>,
}

/// One batched Monte-Carlo throughput measurement: the batched engine
/// ([`mp_sim::run_batch`]) against the sequential observed loop (fresh
/// policy, fresh registry, one `run_observed` per realization — the
/// shape `pas compare --metrics` has without `--batch`). Informational:
/// wall-clock based, machine-dependent, never compared by
/// [`check_against_baselines`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCell {
    /// Golden workload name (`fig4`, ...).
    pub workload: String,
    /// Platform slug (`transmeta-tm5400`, `intel-xscale`).
    pub platform: String,
    /// Scheme slug the cell was measured under.
    pub scheme: String,
    /// Realizations per engine (both engines run the same count from
    /// the same derived seeds).
    pub realizations: usize,
    /// Batched engine wall time (ms).
    pub wall_ms: f64,
    /// Batched engine throughput.
    pub realizations_per_sec: f64,
    /// Equivalent event throughput: mean events per realization (from
    /// the sampled observer) times `realizations_per_sec`.
    pub events_per_sec: f64,
    /// Sequential observed-loop wall time (ms).
    pub sequential_wall_ms: f64,
    /// Sequential observed-loop throughput.
    pub sequential_realizations_per_sec: f64,
    /// `realizations_per_sec / sequential_realizations_per_sec`.
    pub speedup: f64,
}

/// The full report `pas bench` writes as `BENCH_<rev>.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Source revision the numbers were captured at.
    pub rev: String,
    /// Relative tolerance [`check_against_baselines`] applies.
    pub tolerance: f64,
    /// One record per (workload, platform, scheme).
    pub records: Vec<BenchRecord>,
    /// Off-line phase wall-time breakdown, one entry per
    /// (workload, platform). Informational: [`write_baselines`] strips
    /// it and [`check_against_baselines`] never compares it.
    pub offline: Vec<OfflineBreakdown>,
    /// Batched-engine throughput cells, one per (workload, platform).
    /// Informational: stripped from baselines, never compared.
    pub batch: Vec<BatchCell>,
}

// Hand-written so reports without `offline`/`batch` — the committed
// baselines, and any `BENCH_<rev>.json` captured before those fields
// existed — still parse; the derived impl would reject the missing
// fields.
impl Deserialize for BenchReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::custom(format!("BenchReport: missing field `{name}`")))
        };
        Ok(Self {
            rev: Deserialize::from_value(field("rev")?)?,
            tolerance: Deserialize::from_value(field("tolerance")?)?,
            records: Deserialize::from_value(field("records")?)?,
            offline: match v.get("offline") {
                Some(x) => Deserialize::from_value(x)?,
                None => Vec::new(),
            },
            batch: match v.get("batch") {
                Some(x) => Deserialize::from_value(x)?,
                None => Vec::new(),
            },
        })
    }
}

/// A rendered `MetricsRegistry` CSV destined for the baseline directory.
#[derive(Debug, Clone)]
pub struct MetricsFile {
    /// File name (`fig4_transmeta-tm5400_npm.metrics.csv`).
    pub name: String,
    /// CSV body (`metric,kind,value` lines).
    pub csv: String,
}

/// A bench run: the JSON report plus the per-run metrics CSVs.
#[derive(Debug, Clone)]
pub struct BenchOutput {
    /// The comparable report.
    pub report: BenchReport,
    /// One metrics CSV per record, in record order.
    pub metrics: Vec<MetricsFile>,
}

/// Harness options.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Timing-loop replications per (workload, platform, scheme).
    pub reps: usize,
    /// Seed for the deterministic observed run (and the realization the
    /// timing loop reuses).
    pub seed: u64,
    /// Revision label stamped into the report.
    pub rev: String,
    /// Restrict to these workload names (`None` = all golden workloads).
    pub workloads: Option<Vec<String>>,
    /// Realizations per [`BatchCell`] (0 skips the batch cells).
    pub batch_realizations: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            reps: 3,
            seed: 0x1CC_2002,
            rev: "dev".to_string(),
            workloads: None,
            batch_realizations: 512,
        }
    }
}

/// Best-effort revision label: `PAS_BENCH_REV` env override, then
/// `git rev-parse --short HEAD`, then `"dev"`.
pub fn detect_rev() -> String {
    if let Ok(rev) = std::env::var("PAS_BENCH_REV") {
        if !rev.trim().is_empty() {
            return rev.trim().to_string();
        }
    }
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            if let Ok(s) = String::from_utf8(out.stdout) {
                let s = s.trim();
                if !s.is_empty() {
                    return s.to_string();
                }
            }
        }
    }
    "dev".to_string()
}

/// Runs the golden workloads and captures a [`BenchOutput`].
///
/// # Errors
///
/// Propagates workload construction, setup and simulation failures; an
/// unknown name in `opts.workloads` is a [`BenchError::Workload`].
pub fn run_bench(opts: &BenchOptions) -> Result<BenchOutput, BenchError> {
    if let Some(filter) = &opts.workloads {
        for name in filter {
            if !GOLDEN_WORKLOADS.iter().any(|w| w.name == name) {
                return Err(BenchError::Workload(format!(
                    "unknown workload: {name} (golden set: fig4, fig5, fig6)"
                )));
            }
        }
    }
    let mut records = Vec::new();
    let mut metrics = Vec::new();
    let mut offline = Vec::new();
    let mut batch = Vec::new();
    for wl in GOLDEN_WORKLOADS {
        if let Some(filter) = &opts.workloads {
            if !filter.iter().any(|n| n == wl.name) {
                continue;
            }
        }
        for platform in [Platform::Transmeta, Platform::XScale] {
            let graph = wl.graph()?;
            // Span-profile the off-line phase the schemes share. The
            // exclusive session keeps concurrent in-process profiler
            // users (tests, `--profile` commands) out of our spans.
            let (setup, offline_spans) = {
                let _session = pas_obs::profile::exclusive();
                pas_obs::profile::enable();
                let result = Setup::for_load(graph, platform.model(), wl.num_procs, wl.load);
                // The symbolic bounds derivation rides in the same
                // profiled window so its `check.bounds` wall time lands
                // in the off-line breakdown next to the setup spans.
                if let Ok(setup) = &result {
                    let bounds = pas_analyze::analyze_bounds(
                        setup,
                        &pas_analyze::BoundsConfig::default(),
                        wl.name,
                    );
                    debug_assert!(
                        !bounds.report.has_errors(),
                        "{}: bounds self-check failed",
                        wl.name
                    );
                }
                pas_obs::profile::disable();
                (result, pas_obs::profile::take())
            };
            let setup = setup?;
            offline.push(OfflineBreakdown {
                workload: wl.name.to_string(),
                platform: slug(platform.name()),
                spans: pas_obs::profile::aggregate(&offline_spans)
                    .into_iter()
                    .map(|(name, calls, total_ms)| OfflineSpanStat {
                        name,
                        calls,
                        total_ms,
                    })
                    .collect(),
            });
            // One seeded realization shared by every scheme and the
            // timing loop, so numbers are comparable across schemes.
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
            let sim = setup.simulator(false);
            for scheme in Scheme::ALL {
                // Deterministic observed run: every quantity the
                // baselines compare comes from this single run.
                let mut registry = MetricsRegistry::new();
                let mut ledger = SectionedLedger::new();
                let mut ring = RingLog::new(RING_CAPACITY);
                let res = {
                    let mut fan = Fanout::new()
                        .with(&mut registry)
                        .with(&mut ledger)
                        .with(&mut ring);
                    let mut policy = setup.policy(scheme);
                    sim.run_observed(policy.as_mut(), &real, None, None, Some(&mut fan))?
                };
                debug_assert!(
                    ledger.verify(res.total_energy()).is_ok(),
                    "sectioned ledger diverged from engine meter"
                );
                // Timing loop: fresh policy per rep, no observer — the
                // release-mode fast path.
                let start = Instant::now();
                for _ in 0..opts.reps {
                    let mut policy = setup.policy(scheme);
                    sim.run(policy.as_mut(), &real)?;
                }
                let wall = start.elapsed();
                let wall_ms = wall.as_secs_f64() * 1e3;
                let events_per_sec =
                    (ring.seen() * opts.reps as u64) as f64 / wall.as_secs_f64().max(1e-9);
                let sections = ledger
                    .merged()
                    .into_iter()
                    .map(|s| SectionRecord {
                        section: s.key.to_string(),
                        ledger: s.ledger,
                    })
                    .collect();
                metrics.push(MetricsFile {
                    name: format!(
                        "{}_{}_{}.metrics.csv",
                        wl.name,
                        slug(platform.name()),
                        slug(scheme.name())
                    ),
                    csv: registry.to_csv(),
                });
                records.push(BenchRecord {
                    workload: wl.name.to_string(),
                    platform: slug(platform.name()),
                    scheme: slug(scheme.name()),
                    reps: opts.reps,
                    wall_ms,
                    events_per_sec,
                    events: ring.seen(),
                    peak_ring_occupancy: ring.peak_occupancy(),
                    finish_ms: res.finish_time,
                    energy_mj: res.total_energy(),
                    speed_changes: res.energy.speed_changes(),
                    misses: res.missed_deadline as u64,
                    ledger: *ledger.total(),
                    sections,
                });
            }
            if opts.batch_realizations > 0 {
                batch.push(measure_batch_cell(&setup, wl, platform, opts)?);
            }
        }
    }
    Ok(BenchOutput {
        report: BenchReport {
            rev: opts.rev.clone(),
            tolerance: DEFAULT_TOLERANCE,
            records,
            offline,
            batch,
        },
        metrics,
    })
}

/// Measures one [`BatchCell`]: `opts.batch_realizations` seeded
/// realizations through [`mp_sim::run_batch`], then the same derived
/// seeds through the sequential observed loop. The GSS scheme stands in
/// for the managed schemes — it exercises every policy hook (speed
/// selection, shifting, greedy reclamation) so its cost is
/// representative.
fn measure_batch_cell(
    setup: &Setup,
    wl: GoldenWorkload,
    platform: Platform,
    opts: &BenchOptions,
) -> Result<BatchCell, BenchError> {
    let scheme = Scheme::Gss;
    let etm = ExecTimeModel::paper_defaults();
    let sim = setup.simulator(false);
    let n = opts.batch_realizations;

    // Batched engine, observability sampled every 64th realization —
    // the same stride `pas compare --batch` uses.
    let mut cfg = mp_sim::BatchConfig::new(n, opts.seed);
    cfg.observe_stride = 64;
    let start = Instant::now();
    let out = mp_sim::run_batch(&sim, &etm, None, || setup.policy(scheme), &cfg)?;
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    // Sequential observed loop over the same derived seeds: fresh
    // policy, fresh registry, one `run_observed` per realization.
    let start = Instant::now();
    for i in 0..n as u64 {
        let mut rng = StdRng::seed_from_u64(mp_sim::realization_seed(opts.seed, i));
        let real = setup.sample(&etm, &mut rng);
        let mut registry = MetricsRegistry::new();
        let mut policy = setup.policy(scheme);
        sim.run_observed(policy.as_mut(), &real, None, None, Some(&mut registry))?;
    }
    let seq_wall = start.elapsed().as_secs_f64().max(1e-9);

    let realizations_per_sec = n as f64 / wall;
    let sequential_realizations_per_sec = n as f64 / seq_wall;
    Ok(BatchCell {
        workload: wl.name.to_string(),
        platform: slug(platform.name()),
        scheme: slug(scheme.name()),
        realizations: n,
        wall_ms: wall * 1e3,
        realizations_per_sec,
        events_per_sec: out.events_per_realization().unwrap_or(0.0) * realizations_per_sec,
        sequential_wall_ms: seq_wall * 1e3,
        sequential_realizations_per_sec,
        speedup: realizations_per_sec / sequential_realizations_per_sec,
    })
}

/// Serializes a report as pretty JSON.
pub fn report_json(report: &BenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Writes `BENCH_<rev>.json` into `dir` and returns its path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_report(report: &BenchReport, dir: &Path) -> Result<std::path::PathBuf, BenchError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{}.json", report.rev));
    std::fs::write(&path, report_json(report))?;
    Ok(path)
}

/// Writes the baseline set into `dir`: `bench_baseline.json` plus one
/// metrics CSV per record. Returns the written paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_baselines(out: &BenchOutput, dir: &Path) -> Result<Vec<String>, BenchError> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let path = dir.join(BASELINE_FILE);
    // Baselines hold only compared quantities: the machine-dependent
    // off-line breakdown and batch throughput cells stay out so
    // refreshes don't churn the diff.
    let mut stripped = out.report.clone();
    stripped.offline.clear();
    stripped.batch.clear();
    std::fs::write(&path, report_json(&stripped))?;
    written.push(path.display().to_string());
    for m in &out.metrics {
        let path = dir.join(&m.name);
        std::fs::write(&path, &m.csv)?;
        written.push(path.display().to_string());
    }
    Ok(written)
}

/// `|a - b|` within relative tolerance of the larger magnitude (absolute
/// near zero).
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

fn diff(drifts: &mut Vec<String>, key: &str, field: &str, current: f64, baseline: f64, tol: f64) {
    if !close(current, baseline, tol) {
        drifts.push(format!(
            "{key}: {field} {current} vs baseline {baseline} (tolerance {tol:e})"
        ));
    }
}

fn diff_ledger(
    drifts: &mut Vec<String>,
    key: &str,
    prefix: &str,
    cur: &EnergyLedger,
    base: &EnergyLedger,
    tol: f64,
) {
    diff(
        drifts,
        key,
        &format!("{prefix}busy"),
        cur.busy,
        base.busy,
        tol,
    );
    diff(
        drifts,
        key,
        &format!("{prefix}idle"),
        cur.idle,
        base.idle,
        tol,
    );
    diff(
        drifts,
        key,
        &format!("{prefix}speed_overhead"),
        cur.speed_overhead,
        base.speed_overhead,
        tol,
    );
    diff(
        drifts,
        key,
        &format!("{prefix}leakage"),
        cur.leakage,
        base.leakage,
        tol,
    );
    diff(
        drifts,
        key,
        &format!("{prefix}recovery"),
        cur.recovery,
        base.recovery,
        tol,
    );
}

/// Parses a `metric,kind,value` CSV into `(metric, kind) -> value`.
fn parse_metrics_csv(body: &str, name: &str) -> Result<Vec<(String, f64)>, BenchError> {
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if i == 0 || line.trim().is_empty() {
            continue; // header
        }
        let mut parts = line.rsplitn(2, ',');
        let value = parts
            .next()
            .and_then(|v| v.parse::<f64>().ok())
            .ok_or_else(|| BenchError::Baseline(format!("{name}:{}: bad value", i + 1)))?;
        let key = parts
            .next()
            .ok_or_else(|| BenchError::Baseline(format!("{name}:{}: bad line", i + 1)))?;
        out.push((key.to_string(), value));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Compares a fresh bench run against the committed baselines in `dir`.
///
/// Returns the list of drift messages — empty means the check passed.
/// Only deterministic quantities are compared; wall time and throughput
/// are machine-dependent and ignored.
///
/// # Errors
///
/// [`BenchError::Baseline`] if `bench_baseline.json` or a metrics CSV is
/// missing or malformed; [`BenchError::Io`] on read failures.
pub fn check_against_baselines(out: &BenchOutput, dir: &Path) -> Result<Vec<String>, BenchError> {
    let path = dir.join(BASELINE_FILE);
    let body = std::fs::read_to_string(&path).map_err(|e| {
        BenchError::Baseline(format!(
            "{} unreadable ({e}); run `pas bench --update-baselines` first",
            path.display()
        ))
    })?;
    let baseline: BenchReport = serde_json::from_str(&body)
        .map_err(|e| BenchError::Baseline(format!("{}: {e:?}", path.display())))?;
    let tol = baseline.tolerance;
    let mut drifts = Vec::new();
    for rec in &out.report.records {
        let key = rec.key();
        let Some(base) = baseline.records.iter().find(|b| b.key() == key) else {
            drifts.push(format!("{key}: missing from baseline"));
            continue;
        };
        diff(
            &mut drifts,
            &key,
            "events",
            rec.events as f64,
            base.events as f64,
            tol,
        );
        diff(
            &mut drifts,
            &key,
            "peak_ring_occupancy",
            rec.peak_ring_occupancy as f64,
            base.peak_ring_occupancy as f64,
            tol,
        );
        diff(
            &mut drifts,
            &key,
            "finish_ms",
            rec.finish_ms,
            base.finish_ms,
            tol,
        );
        diff(
            &mut drifts,
            &key,
            "energy_mj",
            rec.energy_mj,
            base.energy_mj,
            tol,
        );
        diff(
            &mut drifts,
            &key,
            "speed_changes",
            rec.speed_changes as f64,
            base.speed_changes as f64,
            tol,
        );
        diff(
            &mut drifts,
            &key,
            "misses",
            rec.misses as f64,
            base.misses as f64,
            tol,
        );
        diff_ledger(&mut drifts, &key, "ledger.", &rec.ledger, &base.ledger, tol);
        if rec.sections.len() != base.sections.len() {
            drifts.push(format!(
                "{key}: {} sections vs baseline {}",
                rec.sections.len(),
                base.sections.len()
            ));
        } else {
            for (c, b) in rec.sections.iter().zip(&base.sections) {
                if c.section != b.section {
                    drifts.push(format!(
                        "{key}: section {} vs baseline {}",
                        c.section, b.section
                    ));
                    continue;
                }
                let prefix = format!("section[{}].", c.section);
                diff_ledger(&mut drifts, &key, &prefix, &c.ledger, &b.ledger, tol);
            }
        }
    }
    for m in &out.metrics {
        let path = dir.join(&m.name);
        let base_body = std::fs::read_to_string(&path)
            .map_err(|e| BenchError::Baseline(format!("{} unreadable ({e})", path.display())))?;
        let cur = parse_metrics_csv(&m.csv, &m.name)?;
        let base = parse_metrics_csv(&base_body, &m.name)?;
        if cur.len() != base.len() {
            drifts.push(format!(
                "{}: {} metrics vs baseline {}",
                m.name,
                cur.len(),
                base.len()
            ));
            continue;
        }
        for ((ck, cv), (bk, bv)) in cur.iter().zip(&base) {
            if ck != bk {
                drifts.push(format!("{}: metric {ck} vs baseline {bk}", m.name));
            } else {
                diff(&mut drifts, &m.name, ck, *cv, *bv, tol);
            }
        }
    }
    Ok(drifts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> BenchOptions {
        BenchOptions {
            reps: 1,
            workloads: Some(vec!["fig4".to_string()]),
            batch_realizations: 64,
            ..BenchOptions::default()
        }
    }

    #[test]
    fn golden_workloads_build() {
        for wl in GOLDEN_WORKLOADS {
            let g = wl.graph().expect("graph builds");
            assert!(
                Setup::for_load(g, Platform::XScale.model(), wl.num_procs, wl.load).is_ok(),
                "{} infeasible",
                wl.name
            );
        }
    }

    #[test]
    fn bench_records_every_scheme_on_both_platforms() {
        let out = run_bench(&quick_opts()).expect("bench runs");
        // fig4 only: 2 platforms x 6 schemes.
        assert_eq!(out.report.records.len(), 12);
        assert_eq!(out.metrics.len(), 12);
        for rec in &out.report.records {
            assert!(rec.events > 0, "{}: no events", rec.key());
            assert!(rec.peak_ring_occupancy <= RING_CAPACITY);
            assert!(!rec.sections.is_empty(), "{}: no sections", rec.key());
            assert_eq!(rec.misses, 0, "{}: missed deadline", rec.key());
            // Per-section slices partition the per-category total.
            let section_sum: f64 = rec.sections.iter().map(|s| s.ledger.total()).sum();
            assert!(
                (section_sum - rec.ledger.total()).abs() <= 1e-9 * rec.ledger.total().max(1.0),
                "{}: sections sum {} != ledger total {}",
                rec.key(),
                section_sum,
                rec.ledger.total()
            );
            // The ledger total is the engine meter's total.
            assert!((rec.ledger.total() - rec.energy_mj).abs() <= 1e-9 * rec.energy_mj.max(1.0));
        }
        // NPM is the ceiling: every managed scheme uses at most its energy.
        let npm: f64 = out
            .report
            .records
            .iter()
            .filter(|r| r.scheme == "npm" && r.platform == "intel-xscale")
            .map(|r| r.energy_mj)
            .sum();
        for rec in &out.report.records {
            if rec.platform == "intel-xscale" {
                assert!(rec.energy_mj <= npm + 1e-9, "{} above NPM", rec.key());
            }
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let out = run_bench(&quick_opts()).expect("bench runs");
        let json = report_json(&out.report);
        let back: BenchReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.records.len(), out.report.records.len());
        for (a, b) in back.records.iter().zip(&out.report.records) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.events, b.events);
            assert!((a.energy_mj - b.energy_mj).abs() < 1e-12);
            assert_eq!(a.sections.len(), b.sections.len());
        }
        assert_eq!(back.offline.len(), out.report.offline.len());
    }

    #[test]
    fn bench_captures_an_offline_breakdown() {
        let out = run_bench(&quick_opts()).expect("bench runs");
        // fig4 only: one breakdown per platform.
        assert_eq!(out.report.offline.len(), 2);
        for b in &out.report.offline {
            assert_eq!(b.workload, "fig4");
            assert!(!b.spans.is_empty(), "{}: no spans", b.platform);
            let names: Vec<&str> = b.spans.iter().map(|s| s.name.as_str()).collect();
            for expected in [
                pas_obs::profile::names::OFFLINE_SETUP,
                pas_obs::profile::names::OFFLINE_BUILD,
                pas_obs::profile::names::OFFLINE_CANONICAL,
                pas_obs::profile::names::CHECK_BOUNDS,
            ] {
                assert!(names.contains(&expected), "{names:?} missing {expected}");
            }
            for s in &b.spans {
                assert!(s.calls > 0, "{}: zero calls", s.name);
                assert!(s.total_ms >= 0.0, "{}: negative time", s.name);
            }
        }
    }

    #[test]
    fn bench_captures_a_batch_cell_per_platform() {
        let out = run_bench(&quick_opts()).expect("bench runs");
        // fig4 only: one cell per platform.
        assert_eq!(out.report.batch.len(), 2);
        for cell in &out.report.batch {
            assert_eq!(cell.workload, "fig4");
            assert_eq!(cell.realizations, 64);
            assert!(
                cell.realizations_per_sec > 0.0,
                "{}: zero batch throughput",
                cell.platform
            );
            assert!(
                cell.events_per_sec > 0.0,
                "{}: zero event throughput",
                cell.platform
            );
            assert!(
                cell.sequential_realizations_per_sec > 0.0,
                "{}: zero sequential throughput",
                cell.platform
            );
            assert!(cell.speedup > 0.0, "{}: no speedup recorded", cell.platform);
        }
        // Opting out skips the cells entirely.
        let none = run_bench(&BenchOptions {
            batch_realizations: 0,
            ..quick_opts()
        })
        .expect("bench runs");
        assert!(none.report.batch.is_empty());
    }

    #[test]
    fn reports_without_offline_breakdown_still_parse() {
        // The committed baselines predate the `offline` field (and
        // `write_baselines` keeps stripping it).
        let out = run_bench(&quick_opts()).expect("bench runs");
        let mut stripped = out.report.clone();
        stripped.offline.clear();
        let json = report_json(&stripped);
        let legacy = {
            // Drop the `offline`/`batch` keys entirely to model a
            // pre-field file.
            let v: serde::Value = serde_json::from_str(&json).expect("parses");
            let serde::Value::Object(fields) = v else {
                panic!("object expected")
            };
            let v = serde::Value::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "offline" && k != "batch")
                    .collect(),
            );
            serde_json::to_string(&v).expect("serializes")
        };
        let back: BenchReport = serde_json::from_str(&legacy).expect("legacy report parses");
        assert!(back.offline.is_empty());
        assert!(back.batch.is_empty());
        assert_eq!(back.records.len(), out.report.records.len());
    }

    #[test]
    fn check_passes_against_own_baselines_and_catches_drift() {
        let dir = std::env::temp_dir().join("pas_bench_test_baselines");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run_bench(&quick_opts()).expect("bench runs");
        write_baselines(&out, &dir).expect("baselines written");
        let drifts = check_against_baselines(&out, &dir).expect("check runs");
        assert!(drifts.is_empty(), "unexpected drift: {drifts:?}");
        // Perturb one value: the check must flag exactly that record.
        let mut bad = out.clone();
        bad.report.records[0].energy_mj *= 1.001;
        let drifts = check_against_baselines(&bad, &dir).expect("check runs");
        assert!(
            drifts.iter().any(|d| d.contains("energy_mj")),
            "drift not caught: {drifts:?}"
        );
        // A missing metrics CSV is a baseline error, not a pass.
        std::fs::remove_file(dir.join(&out.metrics[0].name)).unwrap();
        assert!(matches!(
            check_against_baselines(&out, &dir),
            Err(BenchError::Baseline(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_workload_is_rejected() {
        let opts = BenchOptions {
            workloads: Some(vec!["fig9".to_string()]),
            ..BenchOptions::default()
        };
        assert!(matches!(run_bench(&opts), Err(BenchError::Workload(_))));
    }
}
