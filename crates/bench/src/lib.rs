#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! Shared fixtures for the benchmark suite plus the `pas bench`
//! regression harness.
//!
//! Each paper table/figure has a named bench target (see `benches/`):
//!
//! | paper artifact | bench |
//! |----------------|-------|
//! | Table 1, Table 2 | `tables::table_lookup` |
//! | Figure 4 | `figures::fig4_energy_vs_load` |
//! | Figure 5 | `figures::fig5_six_procs` |
//! | Figure 6 | `figures::fig6_energy_vs_alpha` |
//! | Ablation A1 (S_min) | `ablations::ablation_smin` |
//! | Ablation A2 (levels) | `ablations::ablation_levels` |
//! | Ablation A3 (overhead) | `ablations::ablation_overhead` |
//! | Ablation A4 (processors) | `ablations::ablation_procs` |
//!
//! Benchmarks run reduced replication counts (the statistical quality of
//! the full figures is the experiment binaries' job; the benches measure
//! the cost of the machinery). The [`harness`] module is different in
//! kind: it captures *numbers* (energy, events, ledger slices) for the
//! golden workloads and diffs them against committed baselines — see
//! `pas bench --check`.

pub mod harness;

pub use harness::{
    check_against_baselines, detect_rev, run_bench, write_baselines, write_report, BenchError,
    BenchOptions, BenchOutput, BenchRecord, BenchReport, GoldenWorkload, MetricsFile,
    OfflineBreakdown, OfflineSpanStat, SectionRecord, BASELINE_FILE, DEFAULT_TOLERANCE,
    GOLDEN_WORKLOADS,
};

use pas_core::Setup;
use pas_experiments::runner::ExperimentConfig;

/// A reduced experiment configuration for benching.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::quick(5)
}

/// The standard synthetic-app setup used by micro benches.
///
/// # Errors
///
/// Propagates graph lowering and setup feasibility failures as
/// [`BenchError`] instead of panicking, so callers embedded in larger
/// tools (the `pas` CLI) can surface them.
pub fn synthetic_setup() -> Result<Setup, BenchError> {
    let graph = workloads::synthetic_app()
        .lower()
        .map_err(|e| BenchError::Workload(format!("synthetic app: {e}")))?;
    Setup::for_load(graph, dvfs_power::ProcessorModel::transmeta5400(), 2, 0.5)
        .map_err(BenchError::from)
}
