//! Shared fixtures for the benchmark suite.
//!
//! Each paper table/figure has a named bench target (see `benches/`):
//!
//! | paper artifact | bench |
//! |----------------|-------|
//! | Table 1, Table 2 | `tables::table_lookup` |
//! | Figure 4 | `figures::fig4_energy_vs_load` |
//! | Figure 5 | `figures::fig5_six_procs` |
//! | Figure 6 | `figures::fig6_energy_vs_alpha` |
//! | Ablation A1 (S_min) | `ablations::ablation_smin` |
//! | Ablation A2 (levels) | `ablations::ablation_levels` |
//! | Ablation A3 (overhead) | `ablations::ablation_overhead` |
//! | Ablation A4 (processors) | `ablations::ablation_procs` |
//!
//! Benchmarks run reduced replication counts (the statistical quality of
//! the full figures is the experiment binaries' job; the benches measure
//! the cost of the machinery).

use pas_core::Setup;
use pas_experiments::runner::ExperimentConfig;

/// A reduced experiment configuration for benching.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::quick(5)
}

/// The standard synthetic-app setup used by micro benches.
pub fn synthetic_setup() -> Setup {
    Setup::for_load(
        workloads::synthetic_app().lower().expect("valid"),
        dvfs_power::ProcessorModel::transmeta5400(),
        2,
        0.5,
    )
    .expect("feasible")
}
