//! The automated target recognition (ATR) application.
//!
//! The paper's motivating example (§1): "the number of regions of interest
//! (ROI) in one frame varies substantially. For some frames, the number of
//! detected ROIs may be maximum and all the tasks need to be executed,
//! while in most cases [...] part of the application can be skipped", and
//! (§5) "the regions of interest in one frame are detected and each ROI is
//! compared with all the templates".
//!
//! The reconstruction (DESIGN.md §5): each frame is
//!
//! 1. a *detection* task,
//! 2. an OR branch over the detected ROI count `k` (a distribution skewed
//!    toward few ROIs),
//! 3. for each detected ROI, an *extraction* task followed by an AND-fan of
//!    per-template *comparison* tasks (this is the parallelism multiple
//!    processors exploit),
//! 4. a *classification* task consuming the comparisons.
//!
//! Multiple frames are processed in sequence.

use andor_graph::Segment;
use pas_stats::ClippedNormal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// ATR generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtrParams {
    /// Maximum number of ROIs detectable per frame.
    pub max_rois: usize,
    /// `roi_probs[k]` = probability of detecting `k+1` ROIs (length
    /// `max_rois`, must sum to 1).
    pub roi_probs: Vec<f64>,
    /// Number of templates each ROI is compared against (parallel fan-out).
    pub num_templates: usize,
    /// Frames processed in sequence.
    pub frames: usize,
    /// WCET of the frame detection task (ms).
    pub detect_wcet: f64,
    /// WCET of the per-ROI extraction task (ms).
    pub extract_wcet: f64,
    /// WCET of one template comparison (ms).
    pub compare_wcet: f64,
    /// WCET of the per-ROI classification task (ms).
    pub classify_wcet: f64,
    /// Target ACET/WCET ratio α. The paper measured ATR's α and found
    /// "little slack from task's run-time behavior": default 0.9.
    pub alpha: f64,
    /// Per-task WCET jitter (fraction of the base WCET) applied when
    /// building with [`AtrParams::build_jittered`].
    pub wcet_cv: f64,
}

impl Default for AtrParams {
    fn default() -> Self {
        Self {
            max_rois: 4,
            // Skewed toward few ROIs: most frames have 1-2.
            roi_probs: vec![0.35, 0.35, 0.20, 0.10],
            num_templates: 4,
            frames: 1,
            detect_wcet: 6.0,
            extract_wcet: 3.0,
            compare_wcet: 4.0,
            classify_wcet: 2.0,
            alpha: 0.9,
            wcet_cv: 0.2,
        }
    }
}

impl AtrParams {
    /// Validates the parameter set.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_rois == 0 {
            return Err("max_rois must be positive".into());
        }
        if self.roi_probs.len() != self.max_rois {
            return Err(format!(
                "roi_probs has {} entries, expected {}",
                self.roi_probs.len(),
                self.max_rois
            ));
        }
        let sum: f64 = self.roi_probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("roi_probs sum to {sum}, expected 1"));
        }
        if self.roi_probs.iter().any(|p| !(*p > 0.0 && *p <= 1.0)) {
            return Err("roi probabilities must lie in (0, 1]".into());
        }
        if self.num_templates == 0 || self.frames == 0 {
            return Err("num_templates and frames must be positive".into());
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("alpha must be in (0, 1]".into());
        }
        for (name, v) in [
            ("detect_wcet", self.detect_wcet),
            ("extract_wcet", self.extract_wcet),
            ("compare_wcet", self.compare_wcet),
            ("classify_wcet", self.classify_wcet),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} must be positive"));
            }
        }
        if !(self.wcet_cv >= 0.0 && self.wcet_cv < 1.0) {
            return Err("wcet_cv must be in [0, 1)".into());
        }
        Ok(())
    }

    /// Builds the ATR application with exact (non-jittered) WCETs.
    pub fn build(&self) -> Result<Segment, String> {
        self.validate()?;
        Ok(self.assemble(&mut |w| w))
    }

    /// Builds with per-task WCET jitter: each task's WCET is drawn from
    /// `N(base, (cv·base)²)` clipped to `[base·(1−3cv), base·(1+3cv)]`, so
    /// different frames/ROIs are not identical.
    pub fn build_jittered<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Segment, String> {
        self.validate()?;
        let cv = self.wcet_cv;
        // `assemble` takes an infallible closure; latch the first failure
        // and surface it afterwards.
        let mut failure: Option<String> = None;
        let seg = self.assemble(&mut |base| {
            if cv == 0.0 {
                return base;
            }
            let lo = base * (1.0 - 3.0 * cv).max(0.1);
            let hi = base * (1.0 + 3.0 * cv);
            match ClippedNormal::new(base, cv * base, lo, hi) {
                Some(mut dist) => dist.sample(rng),
                None => {
                    failure.get_or_insert_with(|| {
                        format!("task with wcet = {base}: empty clip interval")
                    });
                    base
                }
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(seg),
        }
    }

    fn assemble(&self, wcet_of: &mut impl FnMut(f64) -> f64) -> Segment {
        let mut task = |name: String, base: f64| {
            let w = wcet_of(base);
            Segment::task(name, w, self.alpha * w)
        };
        let mut frames = Vec::with_capacity(self.frames);
        for f in 0..self.frames {
            let detect = task(format!("f{f}.detect"), self.detect_wcet);
            // One arm per possible ROI count.
            let arms: Vec<(f64, Segment)> = (1..=self.max_rois)
                .map(|k| {
                    let rois: Vec<Segment> = (0..k)
                        .map(|r| {
                            let extract =
                                task(format!("f{f}.roi{r}of{k}.extract"), self.extract_wcet);
                            let compares = Segment::par((0..self.num_templates).map(|t| {
                                task(format!("f{f}.roi{r}of{k}.tmpl{t}"), self.compare_wcet)
                            }));
                            let classify =
                                task(format!("f{f}.roi{r}of{k}.classify"), self.classify_wcet);
                            Segment::seq([extract, compares, classify])
                        })
                        .collect();
                    (self.roi_probs[k - 1], Segment::seq(rois))
                })
                .collect();
            frames.push(Segment::seq([detect, Segment::branch(arms)]));
        }
        Segment::seq(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::SectionGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_params_build_valid_graph() {
        let app = AtrParams::default().build().unwrap();
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        // One scenario per ROI count.
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 4);
        let total: f64 = scenarios.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn task_counts_scale_with_roi_count() {
        let p = AtrParams::default();
        let app = p.build().unwrap();
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        let mut counts: Vec<usize> = scenarios
            .iter()
            .map(|(s, _)| {
                sg.active_nodes(&g, s)
                    .iter()
                    .filter(|n| g.node(**n).kind.is_computation())
                    .count()
            })
            .collect();
        counts.sort_unstable();
        // detect + k·(extract + templates + classify).
        let per_roi = 1 + p.num_templates + 1;
        let expect: Vec<usize> = (1..=4).map(|k| 1 + k * per_roi).collect();
        assert_eq!(counts, expect);
    }

    #[test]
    fn alpha_is_respected() {
        let p = AtrParams {
            alpha: 0.7,
            ..Default::default()
        };
        let g = p.build().unwrap().lower().unwrap();
        for (_, n) in g.iter() {
            if n.kind.is_computation() {
                assert!((n.kind.acet() / n.kind.wcet() - 0.7).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multi_frame_sequences_frames() {
        let p = AtrParams {
            frames: 3,
            ..Default::default()
        };
        let g = p.build().unwrap().lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        // 4 outcomes per frame, 3 frames → 64 scenarios.
        assert_eq!(scenarios.len(), 64);
    }

    #[test]
    fn jittered_build_is_deterministic_per_seed_and_valid() {
        let p = AtrParams::default();
        let g1 = p
            .build_jittered(&mut StdRng::seed_from_u64(5))
            .unwrap()
            .lower()
            .unwrap();
        let g2 = p
            .build_jittered(&mut StdRng::seed_from_u64(5))
            .unwrap()
            .lower()
            .unwrap();
        for ((_, a), (_, b)) in g1.iter().zip(g2.iter()) {
            assert_eq!(a.kind.wcet(), b.kind.wcet());
        }
        // And a different seed differs somewhere.
        let g3 = p
            .build_jittered(&mut StdRng::seed_from_u64(6))
            .unwrap()
            .lower()
            .unwrap();
        let differs = g1
            .iter()
            .zip(g3.iter())
            .any(|((_, a), (_, b))| a.kind.wcet() != b.kind.wcet());
        assert!(differs);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let bad = AtrParams {
            roi_probs: vec![0.5, 0.5],
            ..Default::default()
        };
        assert!(bad.build().is_err());
        let bad = AtrParams {
            alpha: 0.0,
            ..Default::default()
        };
        assert!(bad.build().is_err());
        let bad = AtrParams {
            roi_probs: vec![0.2, 0.2, 0.2, 0.2],
            ..Default::default()
        };
        assert!(bad.build().is_err(), "probabilities must sum to 1");
        let bad = AtrParams {
            detect_wcet: -1.0,
            ..Default::default()
        };
        assert!(bad.build().is_err());
    }

    #[test]
    fn template_comparisons_fan_out_in_parallel() {
        let g = AtrParams::default().build().unwrap().lower().unwrap();
        // Some AND fork has one successor per template.
        let max_fanout = g
            .nodes()
            .iter()
            .filter(|n| n.kind.is_and())
            .map(|n| n.succs.len())
            .max()
            .unwrap();
        assert!(max_fanout >= 4);
    }
}
