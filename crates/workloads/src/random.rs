//! Random structured AND/OR applications.
//!
//! Used by the property-based tests (deadline guarantees must hold on *any*
//! valid application, not just the two paper workloads) and by ablation
//! sweeps that need many distinct graph shapes.
//!
//! Generation is structural — a random [`Segment`] tree — so every produced
//! application satisfies the OR-seriality restriction by construction.
//! `Par` arms deliberately contain no `Branch` nodes: two branches in
//! sibling arms would be rejected by validation (two concurrent
//! synchronization points), and avoiding them entirely keeps generation
//! total.

use andor_graph::Segment;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape parameters for a random application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomAppParams {
    /// Maximum nesting depth of the segment tree.
    pub max_depth: usize,
    /// Maximum children of a `Seq`.
    pub max_seq_len: usize,
    /// Maximum arms of a `Par`.
    pub max_par_width: usize,
    /// Maximum arms of a `Branch`.
    pub max_branch_arms: usize,
    /// WCETs are drawn uniformly from this range (ms).
    pub wcet_range: (f64, f64),
    /// ACET/WCET ratio per task, drawn uniformly from this range.
    pub alpha_range: (f64, f64),
}

impl Default for RandomAppParams {
    fn default() -> Self {
        Self {
            max_depth: 3,
            max_seq_len: 4,
            max_par_width: 3,
            max_branch_arms: 3,
            wcet_range: (1.0, 10.0),
            alpha_range: (0.3, 1.0),
        }
    }
}

impl RandomAppParams {
    /// Generates a random application.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Segment {
        let mut counter = 0usize;
        let seg = self.gen_seg(rng, self.max_depth, true, &mut counter);
        // Guarantee at least one task so the graph is non-trivial.
        if counter == 0 {
            return self.gen_task(rng, &mut counter);
        }
        seg
    }

    fn gen_task<R: Rng + ?Sized>(&self, rng: &mut R, counter: &mut usize) -> Segment {
        let wcet = rng.gen_range(self.wcet_range.0..=self.wcet_range.1);
        let alpha = rng.gen_range(self.alpha_range.0..=self.alpha_range.1);
        let name = format!("t{}", *counter);
        *counter += 1;
        Segment::task(name, wcet, (alpha * wcet).max(1e-3))
    }

    /// `allow_branch` is false inside `Par` arms (see module docs).
    fn gen_seg<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        depth: usize,
        allow_branch: bool,
        counter: &mut usize,
    ) -> Segment {
        if depth == 0 {
            return self.gen_task(rng, counter);
        }
        let choice = rng.gen_range(0..if allow_branch { 4 } else { 3 });
        match choice {
            0 => self.gen_task(rng, counter),
            1 => {
                let n = rng.gen_range(1..=self.max_seq_len);
                Segment::seq((0..n).map(|_| self.gen_seg(rng, depth - 1, allow_branch, counter)))
            }
            2 => {
                let n = rng.gen_range(2..=self.max_par_width.max(2));
                Segment::par((0..n).map(|_| self.gen_seg(rng, depth - 1, false, counter)))
            }
            _ => {
                let n = rng.gen_range(2..=self.max_branch_arms.max(2));
                // Random probabilities normalized to 1.
                let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
                let total: f64 = raw.iter().sum();
                Segment::branch(
                    raw.into_iter()
                        .map(|p| (p / total, self.gen_seg(rng, depth - 1, true, counter))),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::SectionGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_apps_always_lower_and_validate() {
        let params = RandomAppParams::default();
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let app = params.generate(&mut rng);
            let g = app.lower().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            SectionGraph::build(&g).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(g.num_tasks() >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = RandomAppParams::default();
        let a = params.generate(&mut StdRng::seed_from_u64(7));
        let b = params.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn deeper_params_make_bigger_graphs_on_average() {
        let small = RandomAppParams {
            max_depth: 1,
            ..Default::default()
        };
        let big = RandomAppParams {
            max_depth: 5,
            ..Default::default()
        };
        let avg = |p: &RandomAppParams| -> f64 {
            (0..50)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(s);
                    p.generate(&mut rng).lower().unwrap().num_tasks() as f64
                })
                .sum::<f64>()
                / 50.0
        };
        assert!(avg(&big) > avg(&small));
    }

    #[test]
    fn acet_bounds_respected() {
        let params = RandomAppParams::default();
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = params.generate(&mut rng).lower().unwrap();
            for (_, n) in g.iter() {
                if n.kind.is_computation() {
                    assert!(n.kind.acet() > 0.0 && n.kind.acet() <= n.kind.wcet());
                }
            }
        }
    }
}
