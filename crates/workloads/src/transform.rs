//! Workload transforms: controlling α (ACET/WCET ratio).
//!
//! The paper's Figure 6 sweeps α — "the average case execution time over
//! worst case execution time for the tasks in the application, which
//! indicates how much dynamic slack there is" — and generates each task's
//! ACET "from a normal distribution around" α·WCET. These helpers rewrite a
//! [`Segment`] tree accordingly before lowering.

use andor_graph::Segment;
use pas_stats::ClippedNormal;
use rand::Rng;

/// Sets every task's ACET to exactly `alpha · wcet`.
///
/// Errors unless `0 < alpha <= 1`.
pub fn with_alpha(seg: &Segment, alpha: f64) -> Result<Segment, String> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(format!("alpha must be in (0, 1], got {alpha}"));
    }
    Ok(map_tasks(seg, &mut |wcet, _acet| alpha * wcet))
}

/// Draws every task's ACET from `N(alpha·wcet, (sd_frac·wcet)²)` clipped to
/// `(0, wcet]` — the paper's per-task variability around the target α.
///
/// Errors unless `0 < alpha <= 1`, `sd_frac >= 0`, and every task has a
/// positive WCET (a zero-WCET task leaves the clip interval empty).
pub fn with_alpha_jitter<R: Rng + ?Sized>(
    seg: &Segment,
    alpha: f64,
    sd_frac: f64,
    rng: &mut R,
) -> Result<Segment, String> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(format!("alpha must be in (0, 1], got {alpha}"));
    }
    if sd_frac.is_nan() || sd_frac < 0.0 {
        return Err(format!("sd_frac must be non-negative, got {sd_frac}"));
    }
    // `map_tasks` takes an infallible closure; latch the first failure and
    // surface it afterwards.
    let mut failure: Option<String> = None;
    let mapped = map_tasks(seg, &mut |wcet, acet| match ClippedNormal::new(
        alpha * wcet,
        sd_frac * wcet,
        0.01 * wcet,
        wcet,
    ) {
        Some(mut dist) => dist.sample(rng),
        None => {
            failure.get_or_insert_with(|| {
                format!("task with wcet = {wcet}: empty clip interval (wcet must be positive)")
            });
            acet
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(mapped),
    }
}

/// The α actually realized by a segment tree: total ACET over total WCET.
pub fn realized_alpha(seg: &Segment) -> f64 {
    let (w, a) = totals(seg);
    if w == 0.0 {
        1.0
    } else {
        a / w
    }
}

fn totals(seg: &Segment) -> (f64, f64) {
    match seg {
        Segment::Task { wcet, acet, .. } => (*wcet, *acet),
        Segment::Seq(v) | Segment::Par(v) => v
            .iter()
            .map(totals)
            .fold((0.0, 0.0), |(w, a), (w2, a2)| (w + w2, a + a2)),
        Segment::Branch(arms) => arms
            .iter()
            .map(|(_, s)| totals(s))
            .fold((0.0, 0.0), |(w, a), (w2, a2)| (w + w2, a + a2)),
        Segment::Loop { body, counts } => {
            let (w, a) = totals(body);
            let max_n = counts.iter().map(|(n, _)| *n).max().unwrap_or(0) as f64;
            (w * max_n, a * max_n)
        }
    }
}

fn map_tasks(seg: &Segment, f: &mut impl FnMut(f64, f64) -> f64) -> Segment {
    match seg {
        Segment::Task { name, wcet, acet } => Segment::Task {
            name: name.clone(),
            wcet: *wcet,
            acet: f(*wcet, *acet),
        },
        Segment::Seq(v) => Segment::Seq(v.iter().map(|s| map_tasks(s, f)).collect()),
        Segment::Par(v) => Segment::Par(v.iter().map(|s| map_tasks(s, f)).collect()),
        Segment::Branch(arms) => {
            Segment::Branch(arms.iter().map(|(p, s)| (*p, map_tasks(s, f))).collect())
        }
        Segment::Loop { body, counts } => Segment::Loop {
            body: Box::new(map_tasks(body, f)),
            counts: counts.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_app() -> Segment {
        Segment::seq([
            Segment::task("A", 10.0, 5.0),
            Segment::par([Segment::task("B", 4.0, 2.0), Segment::task("C", 6.0, 3.0)]),
            Segment::branch([(0.5, Segment::task("D", 8.0, 4.0)), (0.5, Segment::empty())]),
        ])
    }

    #[test]
    fn with_alpha_sets_exact_ratio() {
        let app = with_alpha(&sample_app(), 0.6).expect("alpha in range");
        assert!((realized_alpha(&app) - 0.6).abs() < 1e-12);
        // Lowered graph keeps the ratio per task.
        let g = app.lower().unwrap();
        for (_, n) in g.iter() {
            if n.kind.is_computation() {
                assert!((n.kind.acet() / n.kind.wcet() - 0.6).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn alpha_one_means_no_dynamic_slack() {
        let app = with_alpha(&sample_app(), 1.0).expect("alpha in range");
        let g = app.lower().unwrap();
        for (_, n) in g.iter() {
            if n.kind.is_computation() {
                assert_eq!(n.kind.acet(), n.kind.wcet());
            }
        }
    }

    #[test]
    fn jitter_centers_on_alpha() {
        let mut rng = StdRng::seed_from_u64(21);
        // Average over many draws of the realized alpha.
        let k = 300;
        let mean: f64 = (0..k)
            .map(|_| {
                let app =
                    with_alpha_jitter(&sample_app(), 0.5, 0.1, &mut rng).expect("valid params");
                realized_alpha(&app)
            })
            .sum::<f64>()
            / k as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn jitter_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let app = with_alpha_jitter(&sample_app(), 0.9, 0.3, &mut rng).expect("valid params");
            app.lower().expect("acet stays within (0, wcet]");
        }
    }

    #[test]
    fn with_alpha_rejects_zero() {
        let err = with_alpha(&sample_app(), 0.0).unwrap_err();
        assert!(err.contains("alpha must be in"), "{err}");
        let err =
            with_alpha_jitter(&sample_app(), 0.5, -0.1, &mut StdRng::seed_from_u64(1)).unwrap_err();
        assert!(err.contains("sd_frac must be non-negative"), "{err}");
    }

    #[test]
    fn realized_alpha_of_loop_counts_max_unrolling() {
        let app = Segment::loop_(Segment::task("b", 4.0, 2.0), [(2, 0.5), (3, 0.5)]);
        // Ratio is scale-invariant: still 0.5.
        assert!((realized_alpha(&app) - 0.5).abs() < 1e-12);
    }
}
