#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! Workload generators for the ICPP'02 evaluation.
//!
//! Three families:
//!
//! * [`atr`] — the automated target recognition (ATR) application the paper
//!   motivates: the number of regions of interest (ROIs) detected in a
//!   frame varies substantially, so a frame's work is an OR structure over
//!   the ROI count, and each ROI is compared against all templates in
//!   parallel. The paper's exact task graph was "not shown due to space
//!   limitation"; this is a parameterized reconstruction (see DESIGN.md §5).
//! * [`synthetic`] — the synthetic application of the paper's Figure 3
//!   (tasks A–L, four OR nodes, four AND nodes, a probabilistic loop),
//!   reconstructed from the legible figure attributes.
//! * [`video`] — an MPEG-style decoder pipeline: per-frame work depends on
//!   the frame type (I/P/B) chosen by the encoder, a second realistic
//!   OR-structured workload from the paper's application domain.
//! * [`random`] — random structured AND/OR applications for property-based
//!   testing and ablations.
//!
//! [`transform`] adjusts a workload's α (the ratio of average-case over
//! worst-case execution time — the x-axis of the paper's Figure 6).

pub mod atr;
pub mod random;
pub mod synthetic;
pub mod transform;
pub mod video;

pub use atr::AtrParams;
pub use random::RandomAppParams;
pub use synthetic::{synthetic_app, synthetic_app_alpha};
pub use transform::{with_alpha, with_alpha_jitter};
pub use video::VideoParams;
