//! A video-decoder pipeline workload.
//!
//! The paper motivates AND/OR scheduling with applications whose control
//! flow depends on the input ("the control flow of most practical
//! applications also have OR structures, where execution of the sub-paths
//! depends on the results of previous tasks"). A classic instance from the
//! same era's power-management literature is an MPEG-style decoder: the
//! work per frame depends on the frame type decided by the encoder —
//! intra-coded frames (I) decode standalone, predicted frames (P) add
//! motion compensation, bidirectional frames (B) add a second reference.
//!
//! Per frame:
//!
//! 1. `parse` — bitstream parsing (always),
//! 2. an OR branch over the frame type:
//!    * **I**: `idct` slices in parallel,
//!    * **P**: `idct` slices ∥ `mc` (motion compensation),
//!    * **B**: `idct` slices ∥ `mc-fwd` ∥ `mc-bwd`,
//! 3. `render` — color conversion + display (always).
//!
//! A group of pictures (GOP) is a sequence of frames processed against one
//! deadline window, giving multi-frame OR-induced slack exactly like the
//! ATR workload's ROI variability.

use andor_graph::Segment;
use serde::{Deserialize, Serialize};

/// Video-decoder generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoParams {
    /// Frames per deadline window (GOP length).
    pub frames: usize,
    /// Probabilities of frame types `[I, P, B]`; must sum to 1.
    pub type_probs: [f64; 3],
    /// Parallel IDCT slices per frame.
    pub slices: usize,
    /// WCET of bitstream parsing (ms).
    pub parse_wcet: f64,
    /// WCET of one IDCT slice (ms).
    pub idct_wcet: f64,
    /// WCET of one motion-compensation pass (ms).
    pub mc_wcet: f64,
    /// WCET of rendering (ms).
    pub render_wcet: f64,
    /// ACET/WCET ratio applied uniformly.
    pub alpha: f64,
}

impl Default for VideoParams {
    fn default() -> Self {
        Self {
            frames: 3,
            // Typical GOP mix: few I frames, many P/B.
            type_probs: [0.15, 0.45, 0.40],
            slices: 4,
            parse_wcet: 2.0,
            idct_wcet: 3.0,
            mc_wcet: 5.0,
            render_wcet: 2.5,
            alpha: 0.6,
        }
    }
}

impl VideoParams {
    /// Validates the parameter set.
    pub fn validate(&self) -> Result<(), String> {
        if self.frames == 0 || self.slices == 0 {
            return Err("frames and slices must be positive".into());
        }
        let sum: f64 = self.type_probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 || self.type_probs.iter().any(|p| *p <= 0.0) {
            return Err("type_probs must be positive and sum to 1".into());
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("alpha must be in (0, 1]".into());
        }
        for (name, v) in [
            ("parse_wcet", self.parse_wcet),
            ("idct_wcet", self.idct_wcet),
            ("mc_wcet", self.mc_wcet),
            ("render_wcet", self.render_wcet),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} must be positive"));
            }
        }
        Ok(())
    }

    /// Builds the decoder application.
    pub fn build(&self) -> Result<Segment, String> {
        self.validate()?;
        let task = |name: String, wcet: f64| Segment::task(name, wcet, self.alpha * wcet);
        let mut frames = Vec::with_capacity(self.frames);
        for f in 0..self.frames {
            let idct = |tag: &str| {
                Segment::par(
                    (0..self.slices).map(|s| task(format!("f{f}.{tag}.idct{s}"), self.idct_wcet)),
                )
            };
            let i_frame = idct("I");
            let p_frame = Segment::par([idct("P"), task(format!("f{f}.P.mc"), self.mc_wcet)]);
            let b_frame = Segment::par([
                idct("B"),
                task(format!("f{f}.B.mc-fwd"), self.mc_wcet),
                task(format!("f{f}.B.mc-bwd"), self.mc_wcet),
            ]);
            frames.push(Segment::seq([
                task(format!("f{f}.parse"), self.parse_wcet),
                Segment::branch([
                    (self.type_probs[0], i_frame),
                    (self.type_probs[1], p_frame),
                    (self.type_probs[2], b_frame),
                ]),
                task(format!("f{f}.render"), self.render_wcet),
            ]));
        }
        Ok(Segment::seq(frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::SectionGraph;

    #[test]
    fn default_params_build_valid_graph() {
        let g = VideoParams::default().build().unwrap().lower().unwrap();
        g.validate().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        // 3 frame types per frame, 3 frames: 27 scenarios.
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 27);
        let total: f64 = scenarios.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frame_types_have_increasing_work() {
        let p = VideoParams {
            frames: 1,
            ..Default::default()
        };
        let g = p.build().unwrap().lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let mut works: Vec<(f64, f64)> = sg
            .enumerate_scenarios(&g)
            .map(|(s, prob)| {
                let w: f64 = sg
                    .active_nodes(&g, &s)
                    .iter()
                    .map(|&n| g.node(n).kind.wcet())
                    .sum();
                (prob, w)
            })
            .map(|(prob, w)| (w, prob))
            .collect();
        works.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // I < P < B by one/two motion-compensation passes.
        assert!((works[1].0 - works[0].0 - p.mc_wcet).abs() < 1e-9);
        assert!((works[2].0 - works[1].0 - p.mc_wcet).abs() < 1e-9);
        // Probabilities follow the configured mix.
        assert!((works[0].1 - 0.15).abs() < 1e-9);
        assert!((works[2].1 - 0.40).abs() < 1e-9);
    }

    #[test]
    fn alpha_applies_uniformly() {
        let p = VideoParams {
            alpha: 0.5,
            ..Default::default()
        };
        let g = p.build().unwrap().lower().unwrap();
        for (_, n) in g.iter() {
            if n.kind.is_computation() {
                assert!((n.kind.acet() - 0.5 * n.kind.wcet()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let bad = VideoParams {
            type_probs: [0.5, 0.5, 0.5],
            ..Default::default()
        };
        assert!(bad.build().is_err());
        let bad = VideoParams {
            frames: 0,
            ..Default::default()
        };
        assert!(bad.build().is_err());
        let bad = VideoParams {
            idct_wcet: 0.0,
            ..Default::default()
        };
        assert!(bad.build().is_err());
        let bad = VideoParams {
            alpha: 1.5,
            ..Default::default()
        };
        assert!(bad.build().is_err());
    }

    #[test]
    fn slices_fan_out_in_parallel() {
        let p = VideoParams {
            frames: 1,
            slices: 6,
            ..Default::default()
        };
        let g = p.build().unwrap().lower().unwrap();
        let max_fanout = g
            .nodes()
            .iter()
            .filter(|n| n.kind.is_and())
            .map(|n| n.succs.len())
            .max()
            .unwrap();
        assert!(max_fanout >= 6);
    }
}
