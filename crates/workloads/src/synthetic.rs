//! The synthetic application of the paper's Figure 3.
//!
//! The available scan of the paper garbles the figure, but the following
//! attributes are legible and all used here:
//!
//! * tasks with `(wcet/acet)` labels: A(8/5), B(5/3), C(4/2), E(5/4),
//!   F(8/6), G(5/3), H(10/6), I(10/8), K(5/3), L(10/8); tasks D and J carry
//!   the `4/2` label printed beside them;
//! * four OR nodes (O1–O4) and four AND nodes (A1–A4);
//! * branch probabilities 35%/65% and 30%/70%;
//! * a loop annotated with up to 4 iterations and probabilities
//!   `50%/20%/5%/25%`;
//! * the time unit is milliseconds.
//!
//! The reconstruction arranges these as: A, an AND-parallel pair (B ∥ C),
//! a 35/65 branch (E followed by the loop over D, versus F then G), an
//! AND-parallel pair (H ∥ I), and a 30/70 branch (J versus K then L). The
//! evaluation only requires *a* fixed AND/OR application with Figure 3's
//! statistics; DESIGN.md §5 records the substitution.

use andor_graph::Segment;

/// The Figure-3 synthetic application with the paper's printed
/// WCET/ACET values.
pub fn synthetic_app() -> Segment {
    Segment::seq([
        Segment::task("A", 8.0, 5.0),
        Segment::par([Segment::task("B", 5.0, 3.0), Segment::task("C", 4.0, 2.0)]),
        Segment::branch([
            (
                0.35,
                Segment::seq([
                    Segment::task("E", 5.0, 4.0),
                    Segment::loop_(
                        Segment::task("D", 4.0, 2.0),
                        [(1, 0.50), (2, 0.20), (3, 0.05), (4, 0.25)],
                    ),
                ]),
            ),
            (
                0.65,
                Segment::seq([Segment::task("F", 8.0, 6.0), Segment::task("G", 5.0, 3.0)]),
            ),
        ]),
        Segment::par([Segment::task("H", 10.0, 6.0), Segment::task("I", 10.0, 8.0)]),
        Segment::branch([
            (0.30, Segment::task("J", 4.0, 2.0)),
            (
                0.70,
                Segment::seq([Segment::task("K", 5.0, 3.0), Segment::task("L", 10.0, 8.0)]),
            ),
        ]),
    ])
}

/// The synthetic application with every task's ACET replaced by
/// `alpha · wcet` — the workload of the paper's Figure 6 (energy vs α).
///
/// Errors unless `0 < alpha <= 1`.
pub fn synthetic_app_alpha(alpha: f64) -> Result<Segment, String> {
    crate::transform::with_alpha(&synthetic_app(), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use andor_graph::SectionGraph;

    #[test]
    fn lowers_and_validates() {
        let g = synthetic_app().lower().unwrap();
        // 12 named tasks, with D unrolled up to 4 times (D counts 4 copies,
        // so 11 + 4 = 15 computation nodes).
        assert_eq!(g.num_tasks(), 15);
        let sg = SectionGraph::build(&g).unwrap();
        assert!(sg.len() > 4, "has several sections");
    }

    #[test]
    fn scenario_count_and_probabilities() {
        let g = synthetic_app().lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        // Branch1 (2 arms; arm 0 contains the 4-way loop) × branch2 (2):
        // (4 + 1) × 2 = 10 scenarios.
        assert_eq!(scenarios.len(), 10);
        let total: f64 = scenarios.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn task_attributes_match_figure3() {
        let g = synthetic_app().lower().unwrap();
        let find = |name: &str| {
            g.iter()
                .find(|(_, n)| n.name == name)
                .map(|(_, n)| (n.kind.wcet(), n.kind.acet()))
                .unwrap_or_else(|| panic!("task {name} missing"))
        };
        assert_eq!(find("A"), (8.0, 5.0));
        assert_eq!(find("B"), (5.0, 3.0));
        assert_eq!(find("C"), (4.0, 2.0));
        assert_eq!(find("E"), (5.0, 4.0));
        assert_eq!(find("F"), (8.0, 6.0));
        assert_eq!(find("G"), (5.0, 3.0));
        assert_eq!(find("H"), (10.0, 6.0));
        assert_eq!(find("I"), (10.0, 8.0));
        assert_eq!(find("J"), (4.0, 2.0));
        assert_eq!(find("K"), (5.0, 3.0));
        assert_eq!(find("L"), (10.0, 8.0));
        // Loop body copies.
        assert_eq!(find("D#1"), (4.0, 2.0));
        assert_eq!(find("D#4"), (4.0, 2.0));
    }

    #[test]
    fn alpha_variant_rescales_acets() {
        let g = synthetic_app_alpha(0.5)
            .expect("alpha in range")
            .lower()
            .unwrap();
        assert!(synthetic_app_alpha(0.0).is_err());
        for (_, n) in g.iter() {
            if n.kind.is_computation() {
                assert!((n.kind.acet() - 0.5 * n.kind.wcet()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn or_structure_counts() {
        let g = synthetic_app().lower().unwrap();
        // 2 explicit branches (2 OR nodes each) + loop expansion ORs.
        assert!(g.num_or_nodes() >= 4);
        // AND nodes: two Par fork/join pairs at least.
        let ands = g.nodes().iter().filter(|n| n.kind.is_and()).count();
        assert!(ands >= 4);
    }
}
