//! Hierarchical application construction.
//!
//! Writing flat AND/OR graphs by hand is error-prone; real applications are
//! described structurally — sequences, parallel regions, probabilistic
//! branches, and loops with a known iteration-count distribution (§2.1 of
//! the paper treats loops exactly this way: "expand the loop as several
//! tasks if we know the maximal number of iterations and the corresponding
//! probabilities").
//!
//! [`Segment`] is that structural description. [`Segment::lower`] compiles a
//! segment to a flat, validated [`AndOrGraph`]:
//!
//! * every segment lowers to a single-entry/single-exit region;
//! * [`Segment::Par`] becomes an AND fork/join pair;
//! * [`Segment::Branch`] becomes an OR branch node and an OR merge node;
//! * [`Segment::Loop`] is unrolled into nested continue/stop branches whose
//!   conditional probabilities reproduce the requested iteration-count
//!   distribution.
//!
//! Graphs produced by lowering satisfy the OR-seriality restriction by
//! construction. A `Branch` nested inside a `Par` arm is *serialized*: since
//! all processors synchronize at OR nodes, the branch decision is deferred
//! until the whole enclosing section (including sibling `Par` arms) drains.
//! Two `Branch`es in sibling `Par` arms would require two concurrent
//! synchronization points and are rejected by validation.

use crate::graph::{AndOrGraph, GraphBuilder, GraphError};
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// A structural description of an AND/OR application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Segment {
    /// A computation task (name, WCET, ACET — ms at maximum speed).
    Task {
        /// Task name.
        name: String,
        /// Worst-case execution time.
        wcet: f64,
        /// Average-case execution time.
        acet: f64,
    },
    /// Sub-segments executed one after another.
    Seq(Vec<Segment>),
    /// Sub-segments executed in parallel between an AND fork and an AND
    /// join.
    Par(Vec<Segment>),
    /// Exactly one sub-segment executes, chosen with the paired
    /// probability; control re-converges at an OR merge node.
    Branch(Vec<(f64, Segment)>),
    /// The body repeats `n` times with probability `p` for each
    /// `(n, p)` entry. Lowered by unrolling to nested continue/stop
    /// branches.
    Loop {
        /// Loop body.
        body: Box<Segment>,
        /// Iteration-count distribution: distinct counts with probabilities
        /// summing to 1.
        counts: Vec<(usize, f64)>,
    },
}

impl Segment {
    /// A computation task.
    pub fn task(name: impl Into<String>, wcet: f64, acet: f64) -> Self {
        Segment::Task {
            name: name.into(),
            wcet,
            acet,
        }
    }

    /// Sequential composition.
    pub fn seq(parts: impl IntoIterator<Item = Segment>) -> Self {
        Segment::Seq(parts.into_iter().collect())
    }

    /// Parallel (AND) composition.
    pub fn par(parts: impl IntoIterator<Item = Segment>) -> Self {
        Segment::Par(parts.into_iter().collect())
    }

    /// Probabilistic (OR) branch.
    pub fn branch(arms: impl IntoIterator<Item = (f64, Segment)>) -> Self {
        Segment::Branch(arms.into_iter().collect())
    }

    /// A loop with an iteration-count distribution.
    pub fn loop_(body: Segment, counts: impl IntoIterator<Item = (usize, f64)>) -> Self {
        Segment::Loop {
            body: Box::new(body),
            counts: counts.into_iter().collect(),
        }
    }

    /// An empty segment (lowers to a zero-time AND node). Useful as the
    /// "skip" arm of a branch.
    pub fn empty() -> Self {
        Segment::Seq(Vec::new())
    }

    /// Compiles to a flat validated AND/OR graph.
    pub fn lower(&self) -> Result<AndOrGraph, GraphError> {
        let mut ctx = Lowering {
            b: GraphBuilder::new(),
            sync_counter: 0,
        };
        let expanded = self.expand_loops()?;
        ctx.lower_segment(&expanded)?;
        ctx.b.build()
    }

    /// Recursively replaces every [`Segment::Loop`] with its
    /// branch-unrolled equivalent.
    fn expand_loops(&self) -> Result<Segment, GraphError> {
        Ok(match self {
            Segment::Task { .. } => self.clone(),
            Segment::Seq(parts) => Segment::Seq(
                parts
                    .iter()
                    .map(|p| p.expand_loops())
                    .collect::<Result<_, _>>()?,
            ),
            Segment::Par(parts) => Segment::Par(
                parts
                    .iter()
                    .map(|p| p.expand_loops())
                    .collect::<Result<_, _>>()?,
            ),
            Segment::Branch(arms) => Segment::Branch(
                arms.iter()
                    .map(|(p, s)| Ok((*p, s.expand_loops()?)))
                    .collect::<Result<_, GraphError>>()?,
            ),
            Segment::Loop { body, counts } => {
                let body = body.expand_loops()?;
                expand_loop(&body, counts)?
            }
        })
    }

    /// Renames every task by appending `suffix` — used when unrolling loops
    /// so each iteration's tasks stay distinguishable in traces.
    fn with_suffix(&self, suffix: &str) -> Segment {
        match self {
            Segment::Task { name, wcet, acet } => Segment::Task {
                name: format!("{name}{suffix}"),
                wcet: *wcet,
                acet: *acet,
            },
            Segment::Seq(v) => Segment::Seq(v.iter().map(|s| s.with_suffix(suffix)).collect()),
            Segment::Par(v) => Segment::Par(v.iter().map(|s| s.with_suffix(suffix)).collect()),
            Segment::Branch(arms) => Segment::Branch(
                arms.iter()
                    .map(|(p, s)| (*p, s.with_suffix(suffix)))
                    .collect(),
            ),
            Segment::Loop { body, counts } => Segment::Loop {
                body: Box::new(body.with_suffix(suffix)),
                counts: counts.clone(),
            },
        }
    }
}

/// Unrolls a loop body with an iteration-count distribution into nested
/// continue/stop branches with the correct conditional probabilities.
///
/// For counts `(n₁ < n₂ < ... < n_m)` with probabilities `p_i`:
/// run the body `n₁` times, then branch — stop with `p₁ / Σ_{j≥1} p_j`,
/// continue (and recurse on the remaining counts, offset by `n₁`)
/// otherwise.
fn expand_loop(body: &Segment, counts: &[(usize, f64)]) -> Result<Segment, GraphError> {
    if counts.is_empty() {
        return Err(GraphError::SectionStructure {
            detail: "loop has an empty iteration-count distribution".into(),
        });
    }
    let mut sorted: Vec<(usize, f64)> = counts.to_vec();
    sorted.sort_by_key(|(n, _)| *n);
    for w in sorted.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(GraphError::SectionStructure {
                detail: format!("duplicate loop iteration count {}", w[0].0),
            });
        }
    }
    let total: f64 = sorted.iter().map(|(_, p)| p).sum();
    if (total - 1.0).abs() > 1e-6 || sorted.iter().any(|(_, p)| !(*p > 0.0 && *p <= 1.0)) {
        return Err(GraphError::SectionStructure {
            detail: "loop iteration probabilities must lie in (0,1] and sum to 1".into(),
        });
    }
    Ok(unroll(body, &sorted, 0))
}

fn unroll(body: &Segment, remaining: &[(usize, f64)], done: usize) -> Segment {
    let (n_min, p_min) = remaining[0];
    let reps: Vec<Segment> = (done..n_min)
        .map(|i| body.with_suffix(&format!("#{}", i + 1)))
        .collect();
    if remaining.len() == 1 {
        return Segment::Seq(reps);
    }
    let mass: f64 = remaining.iter().map(|(_, p)| p).sum();
    let p_stop = p_min / mass;
    let tail = unroll(body, &remaining[1..], n_min);
    let mut parts = reps;
    parts.push(Segment::branch([
        (p_stop, Segment::empty()),
        ((1.0 - p_stop).max(f64::MIN_POSITIVE), tail),
    ]));
    Segment::Seq(parts)
}

struct Lowering {
    b: GraphBuilder,
    sync_counter: usize,
}

impl Lowering {
    fn fresh(&mut self, prefix: &str) -> String {
        self.sync_counter += 1;
        format!("{prefix}{}", self.sync_counter)
    }

    /// Lowers a segment and returns its (entry, exit) node pair.
    fn lower_segment(&mut self, s: &Segment) -> Result<(NodeId, NodeId), GraphError> {
        match s {
            Segment::Task { name, wcet, acet } => {
                let id = self.b.task(name.clone(), *wcet, *acet);
                Ok((id, id))
            }
            Segment::Seq(parts) => {
                if parts.is_empty() {
                    let name = self.fresh("nop");
                    let noop = self.b.and(name);
                    return Ok((noop, noop));
                }
                let mut regions = Vec::with_capacity(parts.len());
                for p in parts {
                    regions.push(self.lower_segment(p)?);
                }
                for w in regions.windows(2) {
                    self.connect(w[0].1, w[1].0)?;
                }
                Ok((regions[0].0, regions[regions.len() - 1].1))
            }
            Segment::Par(parts) => {
                if parts.is_empty() {
                    let name = self.fresh("nop");
                    let noop = self.b.and(name);
                    return Ok((noop, noop));
                }
                let fork_name = self.fresh("fork");
                let join_name = self.fresh("join");
                let fork = self.b.and(fork_name);
                let join = self.b.and(join_name);
                for p in parts {
                    let (entry, exit) = self.lower_segment(p)?;
                    self.connect(fork, entry)?;
                    self.connect(exit, join)?;
                }
                Ok((fork, join))
            }
            Segment::Branch(arms) => {
                if arms.is_empty() {
                    return Err(GraphError::SectionStructure {
                        detail: "branch with no arms".into(),
                    });
                }
                let or_name = self.fresh("or");
                let merge_name = self.fresh("merge");
                let or = self.b.or(or_name);
                let merge = self.b.or(merge_name);
                for (prob, arm) in arms {
                    let (entry, exit) = self.lower_segment(arm)?;
                    self.b.or_branch(or, entry, *prob)?;
                    self.connect(exit, merge)?;
                }
                Ok((or, merge))
            }
            Segment::Loop { .. } => unreachable!("loops expanded before lowering"),
        }
    }

    /// Wires `from -> to`, routing through `or_branch` when `from` is an OR
    /// merge node (its single continuation has probability 1).
    fn connect(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        if self.is_or(from) {
            self.b.or_branch(from, to, 1.0)
        } else {
            self.b.edge(from, to)
        }
    }

    fn is_or(&self, id: NodeId) -> bool {
        // GraphBuilder does not expose nodes; track via name prefix instead?
        // No: we record OR-ness in the builder itself.
        self.b.kind_is_or(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sections::SectionGraph;

    #[test]
    fn task_lowers_to_single_node() {
        let g = Segment::task("A", 3.0, 2.0).lower().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.num_tasks(), 1);
    }

    #[test]
    fn seq_chains_tasks() {
        let g = Segment::seq([
            Segment::task("A", 1.0, 0.5),
            Segment::task("B", 2.0, 1.0),
            Segment::task("C", 3.0, 1.5),
        ])
        .lower()
        .unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        // Chain: one succ each except the sink.
        assert_eq!(g.node(g.sources()[0]).succs.len(), 1);
    }

    #[test]
    fn par_adds_fork_and_join() {
        let g = Segment::par([Segment::task("X", 1.0, 0.5), Segment::task("Y", 2.0, 1.0)])
            .lower()
            .unwrap();
        // fork + join + 2 tasks.
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_tasks(), 2);
        let fork = g.sources()[0];
        assert!(g.node(fork).kind.is_and());
        assert_eq!(g.node(fork).succs.len(), 2);
    }

    #[test]
    fn branch_adds_or_and_merge() {
        let g = Segment::branch([
            (0.3, Segment::task("B", 5.0, 3.0)),
            (0.7, Segment::task("C", 4.0, 2.0)),
        ])
        .lower()
        .unwrap();
        assert_eq!(g.num_or_nodes(), 2);
        assert_eq!(g.num_tasks(), 2);
        let sg = SectionGraph::build(&g).unwrap();
        // Empty root (exits straight into the source OR), two arm sections.
        // The merge OR is terminal, so no continuation section exists.
        assert_eq!(sg.len(), 3);
        assert!(sg.section(sg.root()).is_passthrough());
    }

    #[test]
    fn branch_inside_seq_produces_two_scenarios() {
        let app = Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::branch([
                (0.3, Segment::task("B", 5.0, 3.0)),
                (0.7, Segment::task("C", 4.0, 2.0)),
            ]),
            Segment::task("D", 6.0, 4.0),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 2);
    }

    #[test]
    fn nested_branches() {
        let app = Segment::branch([
            (
                0.5,
                Segment::branch([
                    (0.4, Segment::task("C", 2.0, 1.0)),
                    (0.6, Segment::task("D", 2.0, 1.0)),
                ]),
            ),
            (0.5, Segment::task("E", 2.0, 1.0)),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 3);
        let total: f64 = scenarios.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn branch_inside_par_is_serialized() {
        // A single Branch nested in a Par arm is legal: the OR decision is
        // deferred until the sibling arm (Y) also drains, per the paper's
        // "all processors synchronize at an OR node" rule.
        let app = Segment::par([
            Segment::branch([
                (0.5, Segment::task("B", 1.0, 0.5)),
                (0.5, Segment::task("C", 1.0, 0.5)),
            ]),
            Segment::task("Y", 2.0, 1.0),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        // Root section holds the fork and Y; the OR exits it.
        let root = sg.section(sg.root());
        assert_eq!(root.nodes.len(), 2);
        assert!(root.exit_or.is_some());
    }

    #[test]
    fn two_branches_in_sibling_par_arms_rejected() {
        // Two concurrent OR decisions cannot both be synchronization
        // points; validation must refuse.
        let app = Segment::par([
            Segment::branch([
                (0.5, Segment::task("B", 1.0, 0.5)),
                (0.5, Segment::task("C", 1.0, 0.5)),
            ]),
            Segment::branch([
                (0.5, Segment::task("D", 1.0, 0.5)),
                (0.5, Segment::task("E", 1.0, 0.5)),
            ]),
        ]);
        assert!(matches!(
            app.lower().unwrap_err(),
            GraphError::SectionStructure { .. }
        ));
    }

    #[test]
    fn empty_branch_arm_lowers_to_noop() {
        let app = Segment::seq([
            Segment::task("A", 1.0, 0.5),
            Segment::branch([(0.4, Segment::task("B", 2.0, 1.0)), (0.6, Segment::empty())]),
            Segment::task("Z", 1.0, 0.5),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 2);
    }

    #[test]
    fn loop_fixed_count_unrolls_to_sequence() {
        let app = Segment::loop_(Segment::task("body", 2.0, 1.0), [(3, 1.0)]);
        let g = app.lower().unwrap();
        assert_eq!(g.num_tasks(), 3);
        assert_eq!(g.num_or_nodes(), 0);
        // Unrolled copies keep distinguishable names.
        let names: Vec<&str> = g
            .nodes()
            .iter()
            .filter(|n| n.kind.is_computation())
            .map(|n| n.name.as_str())
            .collect();
        assert!(names.contains(&"body#1"));
        assert!(names.contains(&"body#3"));
    }

    #[test]
    fn loop_distribution_scenario_probabilities_match() {
        // 1 iter 50%, 2 iters 30%, 4 iters 20%.
        let app = Segment::loop_(Segment::task("w", 2.0, 1.0), [(1, 0.5), (2, 0.3), (4, 0.2)]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 3);
        let mut by_tasks: Vec<(usize, f64)> = scenarios
            .iter()
            .map(|(s, p)| {
                let n = sg
                    .active_nodes(&g, s)
                    .iter()
                    .filter(|id| g.node(**id).kind.is_computation())
                    .count();
                (n, *p)
            })
            .collect();
        by_tasks.sort_by_key(|(n, _)| *n);
        assert_eq!(by_tasks[0].0, 1);
        assert!((by_tasks[0].1 - 0.5).abs() < 1e-9);
        assert_eq!(by_tasks[1].0, 2);
        assert!((by_tasks[1].1 - 0.3).abs() < 1e-9);
        assert_eq!(by_tasks[2].0, 4);
        assert!((by_tasks[2].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn loop_rejects_bad_distributions() {
        let body = Segment::task("b", 1.0, 0.5);
        assert!(Segment::loop_(body.clone(), []).lower().is_err());
        assert!(Segment::loop_(body.clone(), [(1, 0.5), (1, 0.5)])
            .lower()
            .is_err());
        assert!(Segment::loop_(body, [(1, 0.4), (2, 0.4)]).lower().is_err());
    }

    #[test]
    fn empty_branch_list_is_rejected() {
        assert!(matches!(
            Segment::branch([]).lower().unwrap_err(),
            GraphError::SectionStructure { .. }
        ));
    }

    #[test]
    fn segment_serde_round_trip() {
        let app = Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::loop_(Segment::task("D", 4.0, 2.0), [(1, 0.5), (2, 0.5)]),
            Segment::branch([
                (0.3, Segment::par([Segment::task("B", 5.0, 3.0)])),
                (0.7, Segment::empty()),
            ]),
        ]);
        let json = serde_json::to_string(&app).unwrap();
        let back: Segment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, app);
        // And it still lowers identically.
        let g1 = app.lower().unwrap();
        let g2 = back.lower().unwrap();
        assert_eq!(g1.len(), g2.len());
    }

    #[test]
    fn figure_1a_and_structure() {
        // Paper Figure 1a: A then AND-fork to B and C.
        let app = Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::par([Segment::task("B", 5.0, 3.0), Segment::task("C", 4.0, 2.0)]),
        ]);
        let g = app.lower().unwrap();
        assert_eq!(g.num_tasks(), 3);
        let sg = SectionGraph::build(&g).unwrap();
        assert_eq!(sg.len(), 1);
    }

    #[test]
    fn figure_1b_or_structure() {
        // Paper Figure 1b: A, then 30% F-path vs 70% G-path, merging at O4.
        let app = Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::branch([
                (
                    0.3,
                    Segment::seq([Segment::task("B", 5.0, 3.0), Segment::task("F", 8.0, 6.0)]),
                ),
                (
                    0.7,
                    Segment::seq([Segment::task("C", 4.0, 2.0), Segment::task("G", 5.0, 3.0)]),
                ),
            ]),
        ]);
        let g = app.lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(g.num_tasks(), 5);
    }
}
