//! Program-section decomposition.
//!
//! The paper's OR-seriality simplification ("all the processors will
//! synchronize at an OR node") means execution proceeds as a *chain* of
//! program sections: the root section runs to completion, its exit OR node
//! fires and selects a branch, the branch's section runs, and so on until a
//! section with no exit OR ends the application. Sections may contain
//! arbitrary AND-parallelism; OR nodes only ever sit *between* sections.
//!
//! [`SectionGraph::build`] computes this decomposition for a validated DAG
//! and rejects graphs where the chain property cannot hold:
//!
//! * a section whose nodes feed two *different* OR nodes (two
//!   synchronization points would race);
//! * a node with predecessors on sibling OR branches (it could never become
//!   ready in scenarios that take the other branch).
//!
//! Cross-section data edges from an *ancestor* section are fine — the
//! ancestor completed before the section started — and merge reconvergence
//! is expressed with multi-predecessor OR nodes, as in Figure 1b of the
//! paper.

use crate::graph::{AndOrGraph, GraphError};
use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Index of a section within a [`SectionGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SectionId(pub u32);

impl SectionId {
    /// The section index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a section becomes active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SectionEntry {
    /// Active from application start (contains the root tasks).
    Root,
    /// Activated when OR node `or` fires and selects branch `branch`.
    Branch {
        /// The OR node guarding this section.
        or: NodeId,
        /// Index into the OR node's successor/probability lists.
        branch: usize,
    },
}

/// One program section: a maximal OR-free region executed between two
/// synchronization points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Section {
    /// How the section is entered.
    pub entry: SectionEntry,
    /// The section's computation and AND nodes, in topological order.
    /// May be empty (an OR node directly feeding another OR node).
    pub nodes: Vec<NodeId>,
    /// The OR node the section synchronizes into, or `None` if the
    /// application ends when this section drains.
    pub exit_or: Option<NodeId>,
    /// Distance from the root section along the section chain.
    pub depth: usize,
    /// This section plus every section that is guaranteed to have executed
    /// before it (used to admit ancestor cross-edges).
    ancestors: BTreeSet<SectionId>,
}

impl Section {
    /// True if the section has neither tasks nor synchronization nodes of
    /// its own (a direct OR-to-OR hop).
    pub fn is_passthrough(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The section decomposition of an AND/OR graph.
#[derive(Debug, Clone)]
pub struct SectionGraph {
    sections: Vec<Section>,
    /// Per-node owning section (`None` for OR nodes, which sit between
    /// sections).
    node_section: Vec<Option<SectionId>>,
    /// Branch `(or, k)` → the section it activates.
    branch_section: HashMap<(NodeId, usize), SectionId>,
}

impl SectionGraph {
    /// Decomposes `g` into program sections, or reports why the graph
    /// violates OR-seriality.
    pub fn build(g: &AndOrGraph) -> Result<Self, GraphError> {
        Builder::new(g).run()
    }

    /// The root section.
    pub fn root(&self) -> SectionId {
        SectionId(0)
    }

    /// All sections; index with [`SectionId::index`].
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Borrow one section.
    pub fn section(&self, id: SectionId) -> &Section {
        &self.sections[id.index()]
    }

    /// The section owning a non-OR node (`None` for OR nodes).
    pub fn section_of(&self, node: NodeId) -> Option<SectionId> {
        self.node_section[node.index()]
    }

    /// The section activated when `or` selects branch `k`.
    pub fn branch_section(&self, or: NodeId, k: usize) -> Option<SectionId> {
        self.branch_section.get(&(or, k)).copied()
    }

    /// True if `maybe_ancestor` is `section` itself or one of its
    /// guaranteed-predecessor sections.
    pub fn is_ancestor(&self, maybe_ancestor: SectionId, section: SectionId) -> bool {
        self.sections[section.index()]
            .ancestors
            .contains(&maybe_ancestor)
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Always false for a built decomposition (the root section exists).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }
}

struct Builder<'g> {
    g: &'g AndOrGraph,
    sections: Vec<Section>,
    node_section: Vec<Option<SectionId>>,
    branch_section: HashMap<(NodeId, usize), SectionId>,
}

impl<'g> Builder<'g> {
    fn new(g: &'g AndOrGraph) -> Self {
        Self {
            g,
            sections: Vec::new(),
            node_section: vec![None; g.len()],
            branch_section: HashMap::new(),
        }
    }

    fn run(mut self) -> Result<SectionGraph, GraphError> {
        // Root section is always id 0.
        let mut root_ancestors = BTreeSet::new();
        root_ancestors.insert(SectionId(0));
        self.sections.push(Section {
            entry: SectionEntry::Root,
            nodes: Vec::new(),
            exit_or: None,
            depth: 0,
            ancestors: root_ancestors,
        });

        for id in topo_forward(self.g) {
            if self.g.node(id).kind.is_or() {
                self.process_or(id)?;
            } else {
                self.process_plain(id)?;
            }
        }
        Ok(SectionGraph {
            sections: self.sections,
            node_section: self.node_section,
            branch_section: self.branch_section,
        })
    }

    /// The section a dependence edge `pred -> node` arrives from.
    fn pred_section(&self, pred: NodeId, node: NodeId) -> SectionId {
        if self.g.node(pred).kind.is_or() {
            let k = self
                .g
                .node(pred)
                .succs
                .iter()
                .position(|&s| s == node)
                .expect("adjacency is consistent");
            self.branch_section[&(pred, k)]
        } else {
            self.node_section[pred.index()].expect("preds processed first (topo order)")
        }
    }

    fn process_plain(&mut self, id: NodeId) -> Result<(), GraphError> {
        let preds = &self.g.node(id).preds;
        let home = if preds.is_empty() {
            SectionId(0)
        } else {
            let candidates: Vec<SectionId> =
                preds.iter().map(|&p| self.pred_section(p, id)).collect();
            // The node lives in the deepest candidate; all other candidates
            // must be ancestors of it (already-completed sections).
            let deepest = *candidates
                .iter()
                .max_by_key(|s| self.sections[s.index()].ancestors.len())
                .expect("non-empty");
            for &c in &candidates {
                if !self.sections[deepest.index()].ancestors.contains(&c) {
                    return Err(GraphError::SectionStructure {
                        detail: format!(
                            "node '{}' has predecessors on sibling OR branches",
                            self.g.node(id).name
                        ),
                    });
                }
            }
            deepest
        };
        self.node_section[id.index()] = Some(home);
        self.sections[home.index()].nodes.push(id);
        Ok(())
    }

    fn process_or(&mut self, id: NodeId) -> Result<(), GraphError> {
        // Sections that drain into this OR node.
        let preds = self.g.node(id).preds.clone();
        let exit_sections: BTreeSet<SectionId> = if preds.is_empty() {
            // A source OR: the (possibly empty) root section exits into it.
            std::iter::once(SectionId(0)).collect()
        } else {
            preds.iter().map(|&p| self.pred_section(p, id)).collect()
        };
        for &s in &exit_sections {
            match self.sections[s.index()].exit_or {
                None => self.sections[s.index()].exit_or = Some(id),
                Some(existing) if existing == id => {}
                Some(existing) => {
                    return Err(GraphError::SectionStructure {
                        detail: format!(
                            "a section flows into two OR nodes ('{}' and '{}')",
                            self.g.node(existing).name,
                            self.g.node(id).name
                        ),
                    });
                }
            }
        }
        // Guaranteed-completed history of any branch taken from this OR:
        // the sections *all* alternatives agree on.
        let common: BTreeSet<SectionId> = exit_sections
            .iter()
            .map(|s| self.sections[s.index()].ancestors.clone())
            .reduce(|a, b| a.intersection(&b).copied().collect())
            .expect("at least one exit section");
        let depth = exit_sections
            .iter()
            .map(|s| self.sections[s.index()].depth)
            .max()
            .expect("at least one exit section")
            + 1;
        let n_branches = self.g.node(id).succs.len();
        for k in 0..n_branches {
            let sid = SectionId(self.sections.len() as u32);
            let mut ancestors = common.clone();
            ancestors.insert(sid);
            self.sections.push(Section {
                entry: SectionEntry::Branch { or: id, branch: k },
                nodes: Vec::new(),
                exit_or: None,
                depth,
                ancestors,
            });
            self.branch_section.insert((id, k), sid);
        }
        Ok(())
    }
}

/// Deterministic topological order: repeatedly take the lowest-indexed
/// ready node. (The graph's own `topo_order` uses a stack and is only
/// "some" valid order; section construction wants determinism for stable
/// error messages and section numbering.)
fn topo_forward(g: &AndOrGraph) -> Vec<NodeId> {
    let mut indeg: Vec<usize> = g.nodes().iter().map(|n| n.preds.len()).collect();
    let mut ready: BTreeSet<NodeId> = indeg
        .iter()
        .enumerate()
        .filter(|(_, d)| **d == 0)
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    let mut order = Vec::with_capacity(g.len());
    while let Some(&id) = ready.iter().next() {
        ready.remove(&id);
        order.push(id);
        for &s in &g.node(id).succs {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.insert(s);
            }
        }
    }
    debug_assert_eq!(order.len(), g.len(), "graph validated as acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// A -> O1 -> {B | C} -> O2 -> D
    fn or_diamond() -> AndOrGraph {
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let o1 = b.or("O1");
        let t_b = b.task("B", 5.0, 3.0);
        let t_c = b.task("C", 4.0, 2.0);
        let o2 = b.or("O2");
        let d = b.task("D", 6.0, 4.0);
        b.edge(a, o1).expect("edge is valid");
        b.or_branch(o1, t_b, 0.3).expect("branch is valid");
        b.or_branch(o1, t_c, 0.7).expect("branch is valid");
        b.edge(t_b, o2).expect("edge is valid");
        b.edge(t_c, o2).expect("edge is valid");
        b.or_branch(o2, d, 1.0).expect("branch is valid");
        b.build().expect("graph builds")
    }

    #[test]
    fn diamond_decomposes_into_four_sections() {
        let g = or_diamond();
        let sg = SectionGraph::build(&g).expect("sections build");
        // root {A}, branch(O1,0) {B}, branch(O1,1) {C}, branch(O2,0) {D}
        assert_eq!(sg.len(), 4);
        let root = sg.section(sg.root());
        assert_eq!(root.entry, SectionEntry::Root);
        assert_eq!(root.nodes, vec![NodeId(0)]);
        assert_eq!(root.exit_or, Some(NodeId(1)));
        assert_eq!(root.depth, 0);

        let b0 = sg
            .branch_section(NodeId(1), 0)
            .expect("branch has a section");
        let b1 = sg
            .branch_section(NodeId(1), 1)
            .expect("branch has a section");
        assert_eq!(sg.section(b0).nodes, vec![NodeId(2)]);
        assert_eq!(sg.section(b1).nodes, vec![NodeId(3)]);
        assert_eq!(sg.section(b0).exit_or, Some(NodeId(4)));
        assert_eq!(sg.section(b1).exit_or, Some(NodeId(4)));
        assert_eq!(sg.section(b0).depth, 1);

        let cont = sg
            .branch_section(NodeId(4), 0)
            .expect("branch has a section");
        assert_eq!(sg.section(cont).nodes, vec![NodeId(5)]);
        assert_eq!(sg.section(cont).exit_or, None);
        assert_eq!(sg.section(cont).depth, 2);
    }

    #[test]
    fn ancestors_of_merge_continuation_exclude_branches() {
        let g = or_diamond();
        let sg = SectionGraph::build(&g).expect("sections build");
        let b0 = sg
            .branch_section(NodeId(1), 0)
            .expect("branch has a section");
        let cont = sg
            .branch_section(NodeId(4), 0)
            .expect("branch has a section");
        assert!(sg.is_ancestor(sg.root(), cont));
        assert!(
            !sg.is_ancestor(b0, cont),
            "branch is not guaranteed history"
        );
        assert!(sg.is_ancestor(cont, cont));
    }

    #[test]
    fn section_of_maps_tasks_not_ors() {
        let g = or_diamond();
        let sg = SectionGraph::build(&g).expect("sections build");
        assert_eq!(sg.section_of(NodeId(0)), Some(sg.root()));
        assert_eq!(sg.section_of(NodeId(1)), None); // OR node
    }

    #[test]
    fn and_parallelism_stays_in_one_section() {
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let fork = b.and("F");
        let x = b.task("X", 5.0, 3.0);
        let y = b.task("Y", 4.0, 2.0);
        let join = b.and("J");
        b.edge(a, fork).expect("edge is valid");
        b.edge(fork, x).expect("edge is valid");
        b.edge(fork, y).expect("edge is valid");
        b.edge(x, join).expect("edge is valid");
        b.edge(y, join).expect("edge is valid");
        let g = b.build().expect("graph builds");
        let sg = SectionGraph::build(&g).expect("sections build");
        assert_eq!(sg.len(), 1);
        assert_eq!(sg.section(sg.root()).nodes.len(), 5);
        assert_eq!(sg.section(sg.root()).exit_or, None);
    }

    #[test]
    fn cross_edge_from_ancestor_is_allowed() {
        // A -> O1 -> {B | C} -> O2 -> AND(J) with extra data edge A -> J.
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let o1 = b.or("O1");
        let t_b = b.task("B", 5.0, 3.0);
        let t_c = b.task("C", 4.0, 2.0);
        let o2 = b.or("O2");
        let j = b.and("J");
        let d = b.task("D", 6.0, 4.0);
        b.edge(a, o1).expect("edge is valid");
        b.or_branch(o1, t_b, 0.3).expect("branch is valid");
        b.or_branch(o1, t_c, 0.7).expect("branch is valid");
        b.edge(t_b, o2).expect("edge is valid");
        b.edge(t_c, o2).expect("edge is valid");
        b.or_branch(o2, j, 1.0).expect("branch is valid");
        b.edge(a, j).expect("edge is valid"); // ancestor cross edge
        b.edge(j, d).expect("edge is valid");
        let g = b.build().expect("graph builds");
        let sg = SectionGraph::build(&g).expect("sections build");
        let cont = sg
            .branch_section(NodeId(4), 0)
            .expect("branch has a section");
        assert_eq!(sg.section(cont).nodes, vec![NodeId(5), NodeId(6)]);
    }

    #[test]
    fn sibling_branch_cross_edge_rejected() {
        // B (on branch 0) feeding J (on branch 1) can never be ready when
        // branch 1 is taken.
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let o1 = b.or("O1");
        let t_b = b.task("B", 5.0, 3.0);
        let t_c = b.task("C", 4.0, 2.0);
        let j = b.and("J");
        b.edge(a, o1).expect("edge is valid");
        b.or_branch(o1, t_b, 0.3).expect("branch is valid");
        b.or_branch(o1, t_c, 0.7).expect("branch is valid");
        b.edge(t_c, j).expect("edge is valid");
        b.edge(t_b, j).expect("edge is valid"); // sibling cross edge
        let err = b.build().expect_err("structure violation is rejected");
        assert!(matches!(err, GraphError::SectionStructure { .. }), "{err}");
    }

    #[test]
    fn two_or_exits_from_one_section_rejected() {
        // A fork leading to two different OR nodes: two simultaneous
        // synchronization points.
        let mut b = GraphBuilder::new();
        let fork = b.and("F");
        let x = b.task("X", 5.0, 3.0);
        let y = b.task("Y", 4.0, 2.0);
        let o1 = b.or("O1");
        let o2 = b.or("O2");
        let p = b.task("P", 1.0, 1.0);
        let q = b.task("Q", 1.0, 1.0);
        b.edge(fork, x).expect("edge is valid");
        b.edge(fork, y).expect("edge is valid");
        b.edge(x, o1).expect("edge is valid");
        b.edge(y, o2).expect("edge is valid");
        b.or_branch(o1, p, 1.0).expect("branch is valid");
        b.or_branch(o2, q, 1.0).expect("branch is valid");
        let err = b.build().expect_err("structure violation is rejected");
        assert!(matches!(err, GraphError::SectionStructure { .. }), "{err}");
    }

    #[test]
    fn or_to_or_passthrough_section() {
        // O1 branch 1 goes directly to O2: empty pass-through section.
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let o1 = b.or("O1");
        let t_b = b.task("B", 5.0, 3.0);
        let o2 = b.or("O2");
        let d = b.task("D", 6.0, 4.0);
        b.edge(a, o1).expect("edge is valid");
        b.or_branch(o1, t_b, 0.4).expect("branch is valid");
        b.or_branch(o1, o2, 0.6).expect("branch is valid");
        b.edge(t_b, o2).expect("edge is valid");
        b.or_branch(o2, d, 1.0).expect("branch is valid");
        let g = b.build().expect("graph builds");
        let sg = SectionGraph::build(&g).expect("sections build");
        let skip = sg
            .branch_section(NodeId(1), 1)
            .expect("branch has a section");
        assert!(sg.section(skip).is_passthrough());
        assert_eq!(sg.section(skip).exit_or, Some(NodeId(3)));
    }

    #[test]
    fn nested_or_depths_increase() {
        // A -> O1 -> { B -> O2 -> {C | D} | E }
        let mut b = GraphBuilder::new();
        let a = b.task("A", 2.0, 1.0);
        let o1 = b.or("O1");
        let tb = b.task("B", 2.0, 1.0);
        let o2 = b.or("O2");
        let tc = b.task("C", 2.0, 1.0);
        let td = b.task("D", 2.0, 1.0);
        let te = b.task("E", 2.0, 1.0);
        b.edge(a, o1).expect("edge is valid");
        b.or_branch(o1, tb, 0.5).expect("branch is valid");
        b.or_branch(o1, te, 0.5).expect("branch is valid");
        b.edge(tb, o2).expect("edge is valid");
        b.or_branch(o2, tc, 0.5).expect("branch is valid");
        b.or_branch(o2, td, 0.5).expect("branch is valid");
        let g = b.build().expect("graph builds");
        let sg = SectionGraph::build(&g).expect("sections build");
        let s_b = sg.branch_section(o1, 0).expect("branch has a section");
        let s_c = sg.branch_section(o2, 0).expect("branch has a section");
        assert_eq!(sg.section(s_b).depth, 1);
        assert_eq!(sg.section(s_c).depth, 2);
        // E's section never sees O2's sections as ancestors.
        let s_e = sg.branch_section(o1, 1).expect("branch has a section");
        assert!(!sg.is_ancestor(s_c, s_e));
    }

    #[test]
    fn multiple_root_tasks_share_root_section() {
        let mut b = GraphBuilder::new();
        let x = b.task("X", 1.0, 0.5);
        let y = b.task("Y", 2.0, 1.0);
        let j = b.and("J");
        b.edge(x, j).expect("edge is valid");
        b.edge(y, j).expect("edge is valid");
        let g = b.build().expect("graph builds");
        let sg = SectionGraph::build(&g).expect("sections build");
        assert_eq!(sg.len(), 1);
        assert_eq!(sg.section(sg.root()).nodes.len(), 3);
    }
}
