#![warn(missing_docs)]

//! The extended AND/OR application model of Zhu et al., ICPP'02 §2.1.
//!
//! A real-time application is a DAG `G = (V, E)` whose vertices are of three
//! kinds:
//!
//! * **computation nodes** — real tasks with a worst-case execution time
//!   (WCET, `c_i`) and an average-case execution time (ACET, `a_i`), both
//!   expressed at maximum processor speed;
//! * **AND synchronization nodes** — dummy tasks that depend on *all* their
//!   predecessors and release *all* their successors (parallel fork/join);
//! * **OR synchronization nodes** — dummy tasks that depend on *one* of their
//!   predecessors and release exactly *one* of their successors, selected at
//!   run time with a known a-priori probability per branch (control flow).
//!
//! The paper's structural simplification — "an OR node cannot be processed
//! concurrently with other paths; all the processors synchronize at an OR
//! node" — is enforced by [`AndOrGraph::validate`]: OR nodes partition the
//! graph into *program sections* (see [`sections`]) that execute one at a
//! time, which is precisely what the offline phase of the scheduler needs to
//! build its per-section canonical schedules.
//!
//! The crate provides:
//!
//! * a flat, validated graph representation ([`AndOrGraph`], [`GraphBuilder`]);
//! * program-section decomposition ([`sections::SectionGraph`]);
//! * execution-scenario enumeration and probabilistic sampling
//!   ([`scenario`]) — a *scenario* resolves every reachable OR decision;
//! * a hierarchical construction API ([`structure::Segment`]) with loop
//!   expansion, which lowers series/parallel/branch/loop program structure to
//!   a flat graph that is valid by construction;
//! * serde (JSON) round-tripping of graphs.
//!
//! Time unit: milliseconds at maximum speed, consistently with `dvfs-power`.

pub mod analysis;
pub mod dot;
pub mod graph;
pub mod node;
pub mod scenario;
pub mod sections;
pub mod structure;

pub use analysis::{app_profile, scenario_profile, AppProfile, ScenarioProfile};
pub use dot::to_dot;
pub use graph::{AndOrGraph, GraphBuilder, GraphError};
pub use node::{Node, NodeId, NodeKind};
pub use scenario::{Scenario, ScenarioIter};
pub use sections::{Section, SectionGraph, SectionId};
pub use structure::Segment;
