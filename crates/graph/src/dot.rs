//! Graphviz DOT export.
//!
//! Renders an AND/OR graph in the paper's visual vocabulary: computation
//! nodes as circles labelled `name (wcet/acet)`, AND synchronization nodes
//! as diamonds, OR synchronization nodes as double circles with branch
//! probabilities on their outgoing edges (Figure 1 of the paper).

use crate::graph::AndOrGraph;
use crate::node::NodeKind;
use std::fmt::Write as _;

/// Renders the graph as a DOT digraph named `name`.
///
/// The output is deterministic (nodes and edges in id order), so it is
/// safe to snapshot in tests.
pub fn to_dot(g: &AndOrGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for (id, node) in g.iter() {
        match &node.kind {
            NodeKind::Computation { wcet, acet } => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=ellipse label=\"{}\\n({:.1}/{:.1})\"];",
                    id.0,
                    escape(&node.name),
                    wcet,
                    acet
                );
            }
            NodeKind::And => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=diamond label=\"{}\"];",
                    id.0,
                    escape(&node.name)
                );
            }
            NodeKind::Or { .. } => {
                let _ = writeln!(
                    out,
                    "  n{} [shape=doublecircle label=\"{}\"];",
                    id.0,
                    escape(&node.name)
                );
            }
        }
    }
    for (id, node) in g.iter() {
        match &node.kind {
            NodeKind::Or { probs } => {
                for (succ, p) in node.succs.iter().zip(probs) {
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [label=\"{:.0}%\"];",
                        id.0,
                        succ.0,
                        p * 100.0
                    );
                }
            }
            _ => {
                for succ in &node.succs {
                    let _ = writeln!(out, "  n{} -> n{};", id.0, succ.0);
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Segment;

    fn sample() -> AndOrGraph {
        Segment::seq([
            Segment::task("A", 8.0, 5.0),
            Segment::par([Segment::task("B", 5.0, 3.0), Segment::task("C", 4.0, 2.0)]),
            Segment::branch([(0.3, Segment::task("D", 6.0, 4.0)), (0.7, Segment::empty())]),
        ])
        .lower()
        .unwrap()
    }

    #[test]
    fn renders_all_node_kinds() {
        let dot = to_dot(&sample(), "demo");
        assert!(dot.starts_with("digraph \"demo\" {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("shape=ellipse label=\"A\\n(8.0/5.0)\""));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("shape=doublecircle"));
    }

    #[test]
    fn or_edges_carry_probabilities() {
        let dot = to_dot(&sample(), "demo");
        assert!(dot.contains("label=\"30%\""));
        assert!(dot.contains("label=\"70%\""));
    }

    #[test]
    fn edge_count_matches_graph() {
        let g = sample();
        let dot = to_dot(&g, "demo");
        let edges = dot.matches(" -> ").count();
        let expect: usize = g.nodes().iter().map(|n| n.succs.len()).sum();
        assert_eq!(edges, expect);
    }

    #[test]
    fn names_are_escaped() {
        let mut b = crate::graph::GraphBuilder::new();
        b.task("we\"ird\\name", 1.0, 0.5);
        let g = b.build().unwrap();
        let dot = to_dot(&g, "x\"y");
        assert!(dot.contains("digraph \"x\\\"y\""));
        assert!(dot.contains("we\\\"ird\\\\name"));
    }
}
