//! Flat AND/OR graph representation, construction, and validation.

use crate::node::{Node, NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// Errors detected while building or validating an AND/OR graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// An edge endpoint does not exist.
    UnknownNode(NodeId),
    /// A computation node violates `0 < acet <= wcet` (or is non-finite).
    BadExecutionTimes {
        /// Offending node.
        node: NodeId,
    },
    /// An OR node's branch probabilities do not match its successors, are
    /// out of `(0, 1]`, or do not sum to 1.
    BadOrProbabilities {
        /// Offending OR node.
        node: NodeId,
    },
    /// The graph contains a cycle (the AND/OR model has no back edges;
    /// loops must be expanded, §2.1).
    Cycle,
    /// A duplicate edge was added.
    DuplicateEdge(NodeId, NodeId),
    /// A self-loop was added.
    SelfLoop(NodeId),
    /// The graph violates the paper's OR-seriality restriction: a program
    /// section flows into more than one OR node, mixes application sinks
    /// with an OR exit, or a node has predecessors on sibling OR branches.
    SectionStructure {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::BadExecutionTimes { node } => {
                write!(
                    f,
                    "node {node}: execution times must satisfy 0 < acet <= wcet"
                )
            }
            GraphError::BadOrProbabilities { node } => {
                write!(f, "OR node {node}: invalid branch probabilities")
            }
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::SelfLoop(n) => write!(f, "self loop on {n}"),
            GraphError::SectionStructure { detail } => {
                write!(f, "OR-seriality violation: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated AND/OR task graph.
///
/// Construct via [`GraphBuilder`] (flat edges) or
/// [`crate::structure::Segment::lower`] (hierarchical). Instances are
/// immutable after construction, so every analysis can cache against them
/// safely.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AndOrGraph {
    nodes: Vec<Node>,
}

impl AndOrGraph {
    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes (never true for validated graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow one node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterator over `(NodeId, &Node)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Nodes with no predecessors (the application's root tasks).
    pub fn sources(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.preds.is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.succs.is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// A topological order of all nodes (Kahn). The graph is a DAG by
    /// construction, so this always succeeds.
    pub fn topo_order(&self) -> Vec<NodeId> {
        topo_order(&self.nodes).expect("validated graph is acyclic")
    }

    /// The OR branch list of `or`: `(successor, probability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `or` is not an OR node.
    pub fn or_branches(&self, or: NodeId) -> Vec<(NodeId, f64)> {
        let node = self.node(or);
        match &node.kind {
            NodeKind::Or { probs } => node
                .succs
                .iter()
                .copied()
                .zip(probs.iter().copied())
                .collect(),
            _ => panic!("{or} is not an OR node"),
        }
    }

    /// Sum of WCETs over all computation nodes (an upper bound on total
    /// work in any scenario).
    pub fn total_wcet(&self) -> f64 {
        self.nodes.iter().map(|n| n.kind.wcet()).sum()
    }

    /// Number of computation nodes.
    pub fn num_tasks(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_computation())
            .count()
    }

    /// Number of OR nodes.
    pub fn num_or_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_or()).count()
    }

    /// Re-runs full validation (used after deserialization, since serde
    /// bypasses the builder).
    pub fn validate(&self) -> Result<(), GraphError> {
        validate(&self.nodes)?;
        // Section structure is validated by attempting the decomposition.
        crate::sections::SectionGraph::build(self).map(|_| ())
    }
}

/// Incremental constructor for [`AndOrGraph`].
///
/// # Examples
///
/// Figure 1a of the paper (an AND structure):
///
/// ```
/// use andor_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// let a = b.task("A", 8.0, 5.0);
/// let fork = b.and("A1");
/// let b_ = b.task("B", 5.0, 3.0);
/// let c = b.task("C", 4.0, 2.0);
/// let join = b.and("A2");
/// b.edge(a, fork).unwrap();
/// b.edge(fork, b_).unwrap();
/// b.edge(fork, c).unwrap();
/// b.edge(b_, join).unwrap();
/// b.edge(c, join).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.num_tasks(), 3);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    or_probs: Vec<Vec<f64>>, // parallel to nodes; only meaningful for OR
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: String, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name,
            kind,
            preds: Vec::new(),
            succs: Vec::new(),
        });
        self.or_probs.push(Vec::new());
        id
    }

    /// Adds a computation node.
    pub fn task(&mut self, name: impl Into<String>, wcet: f64, acet: f64) -> NodeId {
        self.push(name.into(), NodeKind::Computation { wcet, acet })
    }

    /// Adds an AND synchronization node.
    pub fn and(&mut self, name: impl Into<String>) -> NodeId {
        self.push(name.into(), NodeKind::And)
    }

    /// Adds an OR synchronization node. Branches are attached with
    /// [`GraphBuilder::or_branch`]; plain [`GraphBuilder::edge`] calls *into*
    /// the OR node define its predecessors.
    pub fn or(&mut self, name: impl Into<String>) -> NodeId {
        self.push(name.into(), NodeKind::Or { probs: Vec::new() })
    }

    /// Adds a dependence edge `from -> to`. For OR `from`, use
    /// [`GraphBuilder::or_branch`] instead so a probability is recorded.
    pub fn edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        self.check_ids(from, to)?;
        if self.nodes[from.index()].kind.is_or() {
            // An OR successor needs a probability; route through or_branch.
            return Err(GraphError::BadOrProbabilities { node: from });
        }
        self.raw_edge(from, to)
    }

    /// Adds an OR branch `or -> to` taken with probability `prob`.
    pub fn or_branch(&mut self, or: NodeId, to: NodeId, prob: f64) -> Result<(), GraphError> {
        self.check_ids(or, to)?;
        if !self.nodes[or.index()].kind.is_or() {
            return Err(GraphError::BadOrProbabilities { node: or });
        }
        if !(prob > 0.0 && prob <= 1.0 && prob.is_finite()) {
            return Err(GraphError::BadOrProbabilities { node: or });
        }
        self.raw_edge(or, to)?;
        self.or_probs[or.index()].push(prob);
        Ok(())
    }

    fn check_ids(&self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        for id in [a, b] {
            if id.index() >= self.nodes.len() {
                return Err(GraphError::UnknownNode(id));
            }
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        Ok(())
    }

    fn raw_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        if self.nodes[from.index()].succs.contains(&to) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        self.nodes[from.index()].succs.push(to);
        self.nodes[to.index()].preds.push(from);
        Ok(())
    }

    /// True if `id` names an OR node — used by the structural lowering to
    /// route edges out of OR merge nodes through [`GraphBuilder::or_branch`].
    pub fn kind_is_or(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len() && self.nodes[id.index()].kind.is_or()
    }

    /// Finalizes and fully validates the graph (node invariants, acyclicity,
    /// and the OR-seriality section structure).
    pub fn build(mut self) -> Result<AndOrGraph, GraphError> {
        // Install collected OR probabilities.
        for (i, probs) in self.or_probs.iter().enumerate() {
            if let NodeKind::Or { probs: p } = &mut self.nodes[i].kind {
                *p = probs.clone();
            }
        }
        validate(&self.nodes)?;
        let g = AndOrGraph { nodes: self.nodes };
        crate::sections::SectionGraph::build(&g)?;
        Ok(g)
    }
}

/// Node-local invariants plus acyclicity.
fn validate(nodes: &[Node]) -> Result<(), GraphError> {
    if nodes.is_empty() {
        return Err(GraphError::Empty);
    }
    for (i, n) in nodes.iter().enumerate() {
        let id = NodeId(i as u32);
        match &n.kind {
            NodeKind::Computation { wcet, acet } => {
                if !(acet.is_finite() && wcet.is_finite() && *acet > 0.0 && *acet <= *wcet) {
                    return Err(GraphError::BadExecutionTimes { node: id });
                }
            }
            NodeKind::Or { probs } => {
                if probs.len() != n.succs.len() {
                    return Err(GraphError::BadOrProbabilities { node: id });
                }
                if !n.succs.is_empty() {
                    let sum: f64 = probs.iter().sum();
                    if (sum - 1.0).abs() > 1e-6 || probs.iter().any(|p| !(*p > 0.0 && *p <= 1.0)) {
                        return Err(GraphError::BadOrProbabilities { node: id });
                    }
                }
            }
            NodeKind::And => {}
        }
        // Adjacency consistency (defensive; cheap).
        for &s in &n.succs {
            if s.index() >= nodes.len() {
                return Err(GraphError::UnknownNode(s));
            }
        }
    }
    topo_order(nodes).map(|_| ())
}

/// Kahn's algorithm; `Err(Cycle)` if not a DAG.
fn topo_order(nodes: &[Node]) -> Result<Vec<NodeId>, GraphError> {
    let mut indeg: Vec<usize> = nodes.iter().map(|n| n.preds.len()).collect();
    let mut queue: Vec<NodeId> = indeg
        .iter()
        .enumerate()
        .filter(|(_, d)| **d == 0)
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(id) = queue.pop() {
        order.push(id);
        for &s in &nodes[id.index()].succs {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() == nodes.len() {
        Ok(order)
    } else {
        Err(GraphError::Cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A -> O1 -> {B (30%) | C (70%)}, both -> O2 -> D  (Figure 1b shape).
    pub(crate) fn or_diamond() -> AndOrGraph {
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let o1 = b.or("O1");
        let t_b = b.task("B", 5.0, 3.0);
        let t_c = b.task("C", 4.0, 2.0);
        let o2 = b.or("O2");
        let d = b.task("D", 6.0, 4.0);
        b.edge(a, o1).unwrap();
        b.or_branch(o1, t_b, 0.3).unwrap();
        b.or_branch(o1, t_c, 0.7).unwrap();
        b.edge(t_b, o2).unwrap();
        b.edge(t_c, o2).unwrap();
        b.or_branch(o2, d, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_or_diamond() {
        let g = or_diamond();
        assert_eq!(g.len(), 6);
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_or_nodes(), 2);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(5)]);
    }

    #[test]
    fn or_branches_pairs_probs() {
        let g = or_diamond();
        let br = g.or_branches(NodeId(1));
        assert_eq!(br.len(), 2);
        assert_eq!(br[0], (NodeId(2), 0.3));
        assert_eq!(br[1], (NodeId(3), 0.7));
    }

    #[test]
    #[should_panic(expected = "not an OR node")]
    fn or_branches_panics_on_task() {
        or_diamond().or_branches(NodeId(0));
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = or_diamond();
        let order = g.topo_order();
        let pos: Vec<usize> = (0..g.len())
            .map(|i| order.iter().position(|n| n.index() == i).unwrap())
            .collect();
        for (id, n) in g.iter() {
            for &s in &n.succs {
                assert!(pos[id.index()] < pos[s.index()]);
            }
        }
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(GraphBuilder::new().build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn rejects_cycles() {
        let mut b = GraphBuilder::new();
        let x = b.task("x", 1.0, 1.0);
        let y = b.task("y", 1.0, 1.0);
        b.edge(x, y).unwrap();
        b.edge(y, x).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn rejects_self_loop_and_duplicate_edges() {
        let mut b = GraphBuilder::new();
        let x = b.task("x", 1.0, 1.0);
        let y = b.task("y", 1.0, 1.0);
        assert_eq!(b.edge(x, x).unwrap_err(), GraphError::SelfLoop(x));
        b.edge(x, y).unwrap();
        assert_eq!(b.edge(x, y).unwrap_err(), GraphError::DuplicateEdge(x, y));
    }

    #[test]
    fn rejects_bad_execution_times() {
        for (w, a) in [(1.0, 2.0), (1.0, 0.0), (f64::NAN, 1.0), (1.0, -3.0)] {
            let mut b = GraphBuilder::new();
            b.task("x", w, a);
            assert!(matches!(
                b.build().unwrap_err(),
                GraphError::BadExecutionTimes { .. }
            ));
        }
    }

    #[test]
    fn rejects_or_prob_sum_mismatch() {
        let mut b = GraphBuilder::new();
        let a = b.task("a", 1.0, 1.0);
        let o = b.or("o");
        let x = b.task("x", 1.0, 1.0);
        let y = b.task("y", 1.0, 1.0);
        b.edge(a, o).unwrap();
        b.or_branch(o, x, 0.5).unwrap();
        b.or_branch(o, y, 0.3).unwrap(); // sums to 0.8
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::BadOrProbabilities { .. }
        ));
    }

    #[test]
    fn rejects_plain_edge_out_of_or() {
        let mut b = GraphBuilder::new();
        let o = b.or("o");
        let x = b.task("x", 1.0, 1.0);
        assert!(matches!(
            b.edge(o, x).unwrap_err(),
            GraphError::BadOrProbabilities { .. }
        ));
    }

    #[test]
    fn rejects_or_branch_from_task() {
        let mut b = GraphBuilder::new();
        let x = b.task("x", 1.0, 1.0);
        let y = b.task("y", 1.0, 1.0);
        assert!(matches!(
            b.or_branch(x, y, 1.0).unwrap_err(),
            GraphError::BadOrProbabilities { .. }
        ));
    }

    #[test]
    fn rejects_bad_probability_values() {
        let mut b = GraphBuilder::new();
        let o = b.or("o");
        let x = b.task("x", 1.0, 1.0);
        assert!(b.or_branch(o, x, 0.0).is_err());
        assert!(b.or_branch(o, x, 1.5).is_err());
        assert!(b.or_branch(o, x, f64::NAN).is_err());
    }

    #[test]
    fn total_wcet_sums_tasks_only() {
        let g = or_diamond();
        assert!((g.total_wcet() - (8.0 + 5.0 + 4.0 + 6.0)).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_revalidates() {
        let g = or_diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: AndOrGraph = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.len(), g.len());
    }

    #[test]
    fn unknown_node_in_edge() {
        let mut b = GraphBuilder::new();
        let x = b.task("x", 1.0, 1.0);
        assert_eq!(
            b.edge(x, NodeId(99)).unwrap_err(),
            GraphError::UnknownNode(NodeId(99))
        );
    }
}
