//! Execution scenarios: resolutions of every OR decision along one run.
//!
//! Because sections execute serially (see [`crate::sections`]), a run of the
//! application is fully described by the ordered list of `(OR node, branch)`
//! choices it makes. This module enumerates all scenarios with their
//! probabilities (for offline statistics such as the average-case remaining
//! work at each power management point) and samples a scenario from the
//! branch probabilities (what the runtime does, one OR at a time).

use crate::graph::AndOrGraph;
use crate::node::NodeId;
use crate::sections::{SectionGraph, SectionId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One resolved run: the OR choices in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// `(or_node, branch_index)` pairs in the order the OR nodes fire.
    pub choices: Vec<(NodeId, usize)>,
}

impl Scenario {
    /// The branch chosen at `or`, if this scenario reaches it.
    pub fn choice_for(&self, or: NodeId) -> Option<usize> {
        self.choices.iter().find(|(o, _)| *o == or).map(|(_, k)| *k)
    }
}

/// Iterator type returned by [`SectionGraph::enumerate_scenarios`]
/// (eagerly materialized; scenario counts in this domain are small).
pub type ScenarioIter = std::vec::IntoIter<(Scenario, f64)>;

impl SectionGraph {
    /// The chain of sections executed under `scenario`, starting at the
    /// root section.
    pub fn chain(&self, g: &AndOrGraph, scenario: &Scenario) -> Vec<SectionId> {
        let mut out = vec![self.root()];
        let mut cur = self.root();
        while let Some(or) = self.section(cur).exit_or {
            let Some(k) = scenario.choice_for(or) else {
                break;
            };
            if g.node(or).succs.is_empty() {
                break;
            }
            cur = self
                .branch_section(or, k)
                .expect("choice indexes a real branch");
            out.push(cur);
        }
        out
    }

    /// All nodes executed under `scenario`: every task/AND node of each
    /// chained section plus the OR nodes traversed, in chain order.
    pub fn active_nodes(&self, g: &AndOrGraph, scenario: &Scenario) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.root();
        loop {
            out.extend_from_slice(&self.section(cur).nodes);
            let Some(or) = self.section(cur).exit_or else {
                break;
            };
            out.push(or);
            let Some(k) = scenario.choice_for(or) else {
                break;
            };
            if g.node(or).succs.is_empty() {
                break;
            }
            cur = self
                .branch_section(or, k)
                .expect("choice indexes a real branch");
        }
        out
    }

    /// Enumerates every scenario with its probability. Probabilities sum
    /// to 1 (within float tolerance).
    ///
    /// The number of scenarios is the product of branch counts along the
    /// section chain; AND/OR applications in this domain have at most a few
    /// thousand. A debug assertion guards against pathological blow-ups.
    pub fn enumerate_scenarios(&self, g: &AndOrGraph) -> ScenarioIter {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.enumerate_from(g, self.root(), 1.0, &mut prefix, &mut out);
        debug_assert!(out.len() <= 1 << 22, "scenario explosion");
        out.into_iter()
    }

    fn enumerate_from(
        &self,
        g: &AndOrGraph,
        section: SectionId,
        prob: f64,
        prefix: &mut Vec<(NodeId, usize)>,
        out: &mut Vec<(Scenario, f64)>,
    ) {
        let Some(or) = self.section(section).exit_or else {
            out.push((
                Scenario {
                    choices: prefix.clone(),
                },
                prob,
            ));
            return;
        };
        let branches = g.or_branches(or);
        if branches.is_empty() {
            // Terminal OR: application ends at the synchronization point.
            out.push((
                Scenario {
                    choices: prefix.clone(),
                },
                prob,
            ));
            return;
        }
        for (k, (_, p)) in branches.iter().enumerate() {
            prefix.push((or, k));
            let next = self
                .branch_section(or, k)
                .expect("branch sections exist for every OR successor");
            self.enumerate_from(g, next, prob * p, prefix, out);
            prefix.pop();
        }
    }

    /// Samples one scenario by walking the chain and drawing each OR branch
    /// from its probabilities — the same distribution the simulator sees.
    pub fn sample_scenario<R: Rng + ?Sized>(&self, g: &AndOrGraph, rng: &mut R) -> Scenario {
        let mut choices = Vec::new();
        let mut cur = self.root();
        while let Some(or) = self.section(cur).exit_or {
            let branches = g.or_branches(or);
            if branches.is_empty() {
                break;
            }
            let k = sample_branch(&branches, rng);
            choices.push((or, k));
            cur = self
                .branch_section(or, k)
                .expect("branch sections exist for every OR successor");
        }
        Scenario { choices }
    }
}

/// Draws a branch index proportionally to the given probabilities.
pub fn sample_branch<R: Rng + ?Sized>(branches: &[(NodeId, f64)], rng: &mut R) -> usize {
    debug_assert!(!branches.is_empty());
    let mut u: f64 = rng.gen();
    for (k, (_, p)) in branches.iter().enumerate() {
        if u < *p {
            return k;
        }
        u -= p;
    }
    branches.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A -> O1 -> {B 30% | C 70%} -> O2 -> D
    fn or_diamond() -> AndOrGraph {
        let mut b = GraphBuilder::new();
        let a = b.task("A", 8.0, 5.0);
        let o1 = b.or("O1");
        let t_b = b.task("B", 5.0, 3.0);
        let t_c = b.task("C", 4.0, 2.0);
        let o2 = b.or("O2");
        let d = b.task("D", 6.0, 4.0);
        b.edge(a, o1).unwrap();
        b.or_branch(o1, t_b, 0.3).unwrap();
        b.or_branch(o1, t_c, 0.7).unwrap();
        b.edge(t_b, o2).unwrap();
        b.edge(t_c, o2).unwrap();
        b.or_branch(o2, d, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn enumerates_both_paths_with_probabilities() {
        let g = or_diamond();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 2);
        let total: f64 = scenarios.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let probs: Vec<f64> = scenarios.iter().map(|(_, p)| *p).collect();
        assert!(probs.contains(&0.3) && probs.contains(&0.7));
    }

    #[test]
    fn active_nodes_follow_choice() {
        let g = or_diamond();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        let (s30, _) = scenarios
            .iter()
            .find(|(_, p)| (*p - 0.3).abs() < 1e-12)
            .unwrap();
        let nodes = sg.active_nodes(&g, s30);
        // A, O1, B, O2, D — and definitely not C.
        assert!(nodes.contains(&NodeId(0)));
        assert!(nodes.contains(&NodeId(2)));
        assert!(!nodes.contains(&NodeId(3)));
        assert!(nodes.contains(&NodeId(5)));
    }

    #[test]
    fn chain_lengths_match_choices() {
        let g = or_diamond();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        for (s, _) in &scenarios {
            // root, branch, continuation.
            assert_eq!(sg.chain(&g, s).len(), 3);
        }
    }

    #[test]
    fn sampling_matches_probabilities() {
        let g = or_diamond();
        let sg = SectionGraph::build(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mut count_b = 0usize;
        for _ in 0..n {
            let s = sg.sample_scenario(&g, &mut rng);
            if s.choice_for(NodeId(1)) == Some(0) {
                count_b += 1;
            }
        }
        let frac = count_b as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn nested_ors_multiply_scenarios() {
        // A -> O1 -> { B -> O2 -> {C | D} | E }: 3 scenarios.
        let mut b = GraphBuilder::new();
        let a = b.task("A", 2.0, 1.0);
        let o1 = b.or("O1");
        let tb = b.task("B", 2.0, 1.0);
        let o2 = b.or("O2");
        let tc = b.task("C", 2.0, 1.0);
        let td = b.task("D", 2.0, 1.0);
        let te = b.task("E", 2.0, 1.0);
        b.edge(a, o1).unwrap();
        b.or_branch(o1, tb, 0.5).unwrap();
        b.or_branch(o1, te, 0.5).unwrap();
        b.edge(tb, o2).unwrap();
        b.or_branch(o2, tc, 0.4).unwrap();
        b.or_branch(o2, td, 0.6).unwrap();
        let g = b.build().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 3);
        let total: f64 = scenarios.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(scenarios
            .iter()
            .any(|(_, p)| (*p - 0.5 * 0.4).abs() < 1e-12));
    }

    #[test]
    fn no_or_graph_has_single_scenario() {
        let mut b = GraphBuilder::new();
        b.task("solo", 3.0, 2.0);
        let g = b.build().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        assert_eq!(scenarios.len(), 1);
        assert!(scenarios[0].0.choices.is_empty());
        assert_eq!(scenarios[0].1, 1.0);
    }

    #[test]
    fn sample_branch_is_exhaustive_under_rounding() {
        // Probabilities that sum to slightly under 1.0 still return a valid
        // index for u drawn near 1.
        let branches = vec![
            (NodeId(0), 0.3333333),
            (NodeId(1), 0.3333333),
            (NodeId(2), 0.3333333),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k = sample_branch(&branches, &mut rng);
            assert!(k < 3);
        }
    }

    #[test]
    fn serde_round_trip() {
        let s = Scenario {
            choices: vec![(NodeId(1), 0), (NodeId(4), 2)],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
