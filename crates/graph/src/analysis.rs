//! Structural analyses over AND/OR graphs: critical paths, work totals per
//! scenario, and parallelism profiles.
//!
//! These are *platform-independent* quantities (they assume unbounded
//! processors at full speed); the processor-count-aware canonical lengths
//! live in `pas-core`'s offline phase. Used by the CLI's `inspect` command
//! and by workload-design sanity checks.

use crate::graph::AndOrGraph;
use crate::node::NodeId;
use crate::scenario::Scenario;
use crate::sections::SectionGraph;

/// Summary of one scenario's computational shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioProfile {
    /// Total WCET over active computation nodes (work at full speed).
    pub total_wcet: f64,
    /// Total ACET over active computation nodes.
    pub total_acet: f64,
    /// Critical-path length through the active subgraph at WCET
    /// (the minimum possible makespan on unboundedly many processors).
    pub critical_path: f64,
    /// `total_wcet / critical_path` — the average parallelism available.
    pub parallelism: f64,
    /// Number of active computation nodes.
    pub tasks: usize,
}

/// Profiles one scenario of the application.
pub fn scenario_profile(
    g: &AndOrGraph,
    sections: &SectionGraph,
    scenario: &Scenario,
) -> ScenarioProfile {
    let active = sections.active_nodes(g, scenario);
    let active_set: std::collections::HashSet<NodeId> = active.iter().copied().collect();
    let mut total_wcet = 0.0;
    let mut total_acet = 0.0;
    let mut tasks = 0;
    // Longest path at WCET: dynamic programming over the active nodes
    // (returned in a valid execution order by `active_nodes`).
    let mut dist: std::collections::HashMap<NodeId, f64> = std::collections::HashMap::new();
    let mut critical: f64 = 0.0;
    for &id in &active {
        let node = g.node(id);
        let wcet = node.kind.wcet();
        if node.kind.is_computation() {
            total_wcet += wcet;
            total_acet += node.kind.acet();
            tasks += 1;
        }
        let ready = node
            .preds
            .iter()
            .filter(|p| active_set.contains(p))
            .filter_map(|p| dist.get(p).copied())
            .fold(0.0_f64, f64::max);
        let d = ready + wcet;
        critical = critical.max(d);
        dist.insert(id, d);
    }
    ScenarioProfile {
        total_wcet,
        total_acet,
        critical_path: critical,
        parallelism: if critical > 0.0 {
            total_wcet / critical
        } else {
            1.0
        },
        tasks,
    }
}

/// Application-level aggregation over every scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Number of scenarios (distinct OR resolutions).
    pub scenarios: usize,
    /// Probability-weighted expected total work (WCET).
    pub expected_wcet: f64,
    /// Probability-weighted expected total work (ACET).
    pub expected_acet: f64,
    /// Longest critical path over all scenarios.
    pub worst_critical_path: f64,
    /// Smallest / largest per-scenario work (WCET).
    pub wcet_range: (f64, f64),
    /// Probability-weighted mean parallelism.
    pub mean_parallelism: f64,
}

/// Profiles the whole application by enumerating its scenarios.
pub fn app_profile(g: &AndOrGraph, sections: &SectionGraph) -> AppProfile {
    let mut scenarios = 0usize;
    let mut expected_wcet = 0.0;
    let mut expected_acet = 0.0;
    let mut worst_cp: f64 = 0.0;
    let mut wcet_min = f64::INFINITY;
    let mut wcet_max: f64 = 0.0;
    let mut mean_par = 0.0;
    for (scenario, p) in sections.enumerate_scenarios(g) {
        let prof = scenario_profile(g, sections, &scenario);
        scenarios += 1;
        expected_wcet += p * prof.total_wcet;
        expected_acet += p * prof.total_acet;
        worst_cp = worst_cp.max(prof.critical_path);
        wcet_min = wcet_min.min(prof.total_wcet);
        wcet_max = wcet_max.max(prof.total_wcet);
        mean_par += p * prof.parallelism;
    }
    AppProfile {
        scenarios,
        expected_wcet,
        expected_acet,
        worst_critical_path: worst_cp,
        wcet_range: (wcet_min, wcet_max),
        mean_parallelism: mean_par,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Segment;

    fn app() -> (AndOrGraph, SectionGraph) {
        let g = Segment::seq([
            Segment::task("A", 4.0, 2.0),
            Segment::par([Segment::task("B", 6.0, 3.0), Segment::task("C", 2.0, 1.0)]),
            Segment::branch([
                (0.25, Segment::task("D", 8.0, 4.0)),
                (0.75, Segment::task("E", 2.0, 1.0)),
            ]),
        ])
        .lower()
        .unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        (g, sg)
    }

    #[test]
    fn scenario_profile_measures_work_and_critical_path() {
        let (g, sg) = app();
        let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
        let (heavy, _) = scenarios
            .iter()
            .find(|(_, p)| (*p - 0.25).abs() < 1e-12)
            .unwrap();
        let prof = scenario_profile(&g, &sg, heavy);
        // A + B + C + D.
        assert!((prof.total_wcet - 20.0).abs() < 1e-12);
        assert!((prof.total_acet - 10.0).abs() < 1e-12);
        // Critical path: A(4) + B(6) + D(8).
        assert!((prof.critical_path - 18.0).abs() < 1e-12);
        assert!((prof.parallelism - 20.0 / 18.0).abs() < 1e-12);
        assert_eq!(prof.tasks, 4);
    }

    #[test]
    fn app_profile_weights_by_probability() {
        let (g, sg) = app();
        let prof = app_profile(&g, &sg);
        assert_eq!(prof.scenarios, 2);
        // E[wcet] = 12 + 0.25·8 + 0.75·2 = 15.5.
        assert!((prof.expected_wcet - 15.5).abs() < 1e-12);
        assert!((prof.worst_critical_path - 18.0).abs() < 1e-12);
        assert_eq!(prof.wcet_range, (14.0, 20.0));
        assert!(prof.mean_parallelism > 1.0);
    }

    #[test]
    fn single_task_profile_is_trivial() {
        let g = Segment::task("only", 5.0, 3.0).lower().unwrap();
        let sg = SectionGraph::build(&g).unwrap();
        let prof = app_profile(&g, &sg);
        assert_eq!(prof.scenarios, 1);
        assert!((prof.expected_wcet - 5.0).abs() < 1e-12);
        assert!((prof.worst_critical_path - 5.0).abs() < 1e-12);
        assert!((prof.mean_parallelism - 1.0).abs() < 1e-12);
    }
}
