//! Graph vertices: computation tasks and AND/OR synchronization nodes.

use serde::{Deserialize, Serialize};

/// Index of a node within its [`crate::AndOrGraph`].
///
/// `u32` keeps the per-node footprint small; graphs in this domain have at
/// most a few thousand nodes even after loop expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as a usize, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a vertex is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A real task with worst-case and average-case execution times (ms at
    /// maximum speed). Invariant (checked at build): `0 < acet <= wcet`.
    Computation {
        /// Worst-case execution time at maximum speed.
        wcet: f64,
        /// Average-case execution time at maximum speed.
        acet: f64,
    },
    /// AND synchronization node: ready when *all* predecessors finish;
    /// releases *all* successors. Dummy task, zero execution time.
    And,
    /// OR synchronization node: ready when *one* predecessor finishes;
    /// releases exactly *one* successor, chosen with `probs[k]` for the k-th
    /// successor. Dummy task, zero execution time.
    ///
    /// Invariant (checked at build): `probs.len() == succs.len()`, each
    /// probability is in `(0, 1]` and they sum to 1.
    Or {
        /// Branch probabilities, parallel to the node's successor list.
        probs: Vec<f64>,
    },
}

impl NodeKind {
    /// True for computation nodes.
    pub fn is_computation(&self) -> bool {
        matches!(self, NodeKind::Computation { .. })
    }

    /// True for OR synchronization nodes.
    pub fn is_or(&self) -> bool {
        matches!(self, NodeKind::Or { .. })
    }

    /// True for AND synchronization nodes.
    pub fn is_and(&self) -> bool {
        matches!(self, NodeKind::And)
    }

    /// WCET of the node — zero for synchronization (dummy) nodes.
    pub fn wcet(&self) -> f64 {
        match self {
            NodeKind::Computation { wcet, .. } => *wcet,
            _ => 0.0,
        }
    }

    /// ACET of the node — zero for synchronization (dummy) nodes.
    pub fn acet(&self) -> f64 {
        match self {
            NodeKind::Computation { acet, .. } => *acet,
            _ => 0.0,
        }
    }
}

/// A vertex plus its adjacency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name (unique within a graph by construction when using
    /// [`crate::GraphBuilder::task`] defaults, but uniqueness is not
    /// required).
    pub name: String,
    /// The vertex kind.
    pub kind: NodeKind,
    /// Direct predecessors.
    pub preds: Vec<NodeId>,
    /// Direct successors. For OR nodes, index `k` here pairs with
    /// `probs[k]`.
    pub succs: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let c = NodeKind::Computation {
            wcet: 8.0,
            acet: 5.0,
        };
        assert!(c.is_computation() && !c.is_or() && !c.is_and());
        assert_eq!(c.wcet(), 8.0);
        assert_eq!(c.acet(), 5.0);

        let a = NodeKind::And;
        assert!(a.is_and());
        assert_eq!(a.wcet(), 0.0);

        let o = NodeKind::Or { probs: vec![1.0] };
        assert!(o.is_or());
        assert_eq!(o.acet(), 0.0);
    }

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }
}
