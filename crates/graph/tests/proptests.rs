//! Property-based invariants of the AND/OR graph machinery, driven by a
//! proptest strategy that generates random *structured* applications
//! (mirroring `workloads::random`, but defined here so the graph crate's
//! invariants don't depend on a downstream crate).

use andor_graph::{AndOrGraph, NodeKind, Scenario, SectionGraph, Segment};
use proptest::prelude::*;

/// Strategy: random segments up to a given depth. `Par` arms exclude
/// `Branch` (two concurrent synchronization points are invalid by design).
fn arb_segment(depth: u32, allow_branch: bool) -> BoxedStrategy<Segment> {
    let task = (1u32..1000, 1u32..=100).prop_map(|(w, a_pct)| {
        let wcet = w as f64 / 10.0;
        Segment::task("t", wcet, wcet * a_pct as f64 / 100.0)
    });
    if depth == 0 {
        return task.boxed();
    }
    let seq = proptest::collection::vec(arb_segment(depth - 1, allow_branch), 1..4)
        .prop_map(Segment::Seq);
    let par = proptest::collection::vec(arb_segment(depth - 1, false), 2..4).prop_map(Segment::Par);
    if allow_branch {
        let branch = proptest::collection::vec((1u32..100, arb_segment(depth - 1, true)), 2..4)
            .prop_map(|arms| {
                let total: u32 = arms.iter().map(|(w, _)| w).sum();
                Segment::Branch(
                    arms.into_iter()
                        .map(|(w, s)| (w as f64 / total as f64, s))
                        .collect(),
                )
            });
        prop_oneof![task, seq, par, branch].boxed()
    } else {
        prop_oneof![task, seq, par].boxed()
    }
}

fn lowered() -> impl Strategy<Value = AndOrGraph> {
    arb_segment(3, true).prop_filter_map("lowers successfully", |s| s.lower().ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every structurally generated application lowers to a graph that
    /// passes full validation (including after a serde round trip).
    #[test]
    fn lowering_always_validates(g in lowered()) {
        g.validate().unwrap();
        let json = serde_json::to_string(&g).unwrap();
        let back: AndOrGraph = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
    }

    /// Scenario probabilities always sum to 1.
    #[test]
    fn scenario_probabilities_sum_to_one(g in lowered()) {
        let sg = SectionGraph::build(&g).unwrap();
        let total: f64 = sg.enumerate_scenarios(&g).map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum={total}");
    }

    /// Sections partition the non-OR nodes: every computation/AND node
    /// belongs to exactly one section, OR nodes to none.
    #[test]
    fn sections_partition_nodes(g in lowered()) {
        let sg = SectionGraph::build(&g).unwrap();
        let mut seen = vec![0usize; g.len()];
        for section in sg.sections() {
            for &n in &section.nodes {
                seen[n.index()] += 1;
            }
        }
        for (id, node) in g.iter() {
            match node.kind {
                NodeKind::Or { .. } => prop_assert_eq!(seen[id.index()], 0),
                _ => prop_assert_eq!(seen[id.index()], 1, "node {}", id),
            }
        }
    }

    /// Each scenario's active node set respects dependence: every active
    /// node's predecessors that are active appear earlier in the order.
    #[test]
    fn active_nodes_are_topologically_ordered(g in lowered()) {
        let sg = SectionGraph::build(&g).unwrap();
        for (scenario, _) in sg.enumerate_scenarios(&g) {
            let active = sg.active_nodes(&g, &scenario);
            let pos: std::collections::HashMap<_, _> =
                active.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            for &n in &active {
                for p in &g.node(n).preds {
                    if let Some(&pp) = pos.get(p) {
                        prop_assert!(pp < pos[&n]);
                    }
                }
            }
        }
    }

    /// Sampling only ever produces scenarios that enumeration knows about.
    #[test]
    fn sampled_scenarios_are_enumerable(g in lowered(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let sg = SectionGraph::build(&g).unwrap();
        let all: Vec<Scenario> =
            sg.enumerate_scenarios(&g).map(|(s, _)| s).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = sg.sample_scenario(&g, &mut rng);
        prop_assert!(all.contains(&s));
    }

    /// The DOT export mentions every node exactly once as a declaration.
    #[test]
    fn dot_declares_every_node(g in lowered()) {
        let dot = andor_graph::to_dot(&g, "p");
        for (id, _) in g.iter() {
            let decl = format!("  n{} [", id.0);
            prop_assert_eq!(dot.matches(&decl).count(), 1);
        }
    }

    /// The scenario-weighted expected work equals the analytical profile.
    #[test]
    fn profile_expectation_matches_enumeration(g in lowered()) {
        let sg = SectionGraph::build(&g).unwrap();
        let profile = andor_graph::app_profile(&g, &sg);
        let manual: f64 = sg
            .enumerate_scenarios(&g)
            .map(|(s, p)| {
                let w: f64 = sg
                    .active_nodes(&g, &s)
                    .iter()
                    .map(|&n| g.node(n).kind.wcet())
                    .sum();
                p * w
            })
            .sum();
        prop_assert!((profile.expected_wcet - manual).abs() < 1e-6);
    }
}
