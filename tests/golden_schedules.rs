//! Golden-schedule tests: small instances whose canonical schedules, LSTs
//! and GSS runs were traced by hand against the paper's definitions. These
//! anchor the implementation — if a refactor changes any number here, it
//! changed the algorithm, not just the code.

use pas_andor::core::{Scheme, Setup};
use pas_andor::graph::Segment;
use pas_andor::power::{Overheads, ProcessorModel};
use pas_andor::sim::Realization;
use pas_andor::workloads::synthetic_app;

fn lst_of(setup: &Setup, name: &str) -> f64 {
    let (id, _) = setup
        .graph
        .iter()
        .find(|(_, n)| n.name == name)
        .unwrap_or_else(|| panic!("task {name} missing"));
    setup.plan.lst[id.index()].expect("computation node")
}

/// Figure 1a of the paper: A(8/5) feeding an AND fork to B(5/3) ∥ C(4/2),
/// two processors.
///
/// Canonical (WCET, fmax): A on p0 [0,8]; fork; B on p0 [8,13], C on p1
/// [8,12]; makespan 13. With D = 26: shift by 13 → LST_A = 13, LST_B = 21,
/// LST_C = 21.
#[test]
fn figure_1a_hand_traced() {
    let app = Segment::seq([
        Segment::task("A", 8.0, 5.0),
        Segment::par([Segment::task("B", 5.0, 3.0), Segment::task("C", 4.0, 2.0)]),
    ]);
    let setup = Setup::with_deadline_and_overheads(
        app.lower().unwrap(),
        ProcessorModel::continuous(0.05).unwrap(),
        2,
        26.0,
        Overheads::none(),
    )
    .unwrap();
    assert!((setup.plan.worst_total - 13.0).abs() < 1e-12);
    assert!(
        (setup.plan.avg_total - 8.0).abs() < 1e-12,
        "A(5) + max(3,2)"
    );
    assert!((lst_of(&setup, "A") - 13.0).abs() < 1e-12);
    assert!((lst_of(&setup, "B") - 21.0).abs() < 1e-12);
    assert!((lst_of(&setup, "C") - 21.0).abs() < 1e-12);

    // GSS at worst case: A runs at 8/(8+13) = 8/21; B and C then split the
    // remaining window. Every task finishes exactly at its shifted-
    // canonical estimate, and the application at exactly D.
    let scen = setup
        .sections
        .enumerate_scenarios(&setup.graph)
        .next()
        .map(|(s, _)| s)
        .unwrap();
    let real = Realization::worst_case(&setup.graph, scen);
    let mut policy = setup.policy(Scheme::Gss);
    let res = setup
        .simulator(true)
        .run(policy.as_mut(), &real)
        .expect("run succeeds");
    assert!(!res.missed_deadline);
    assert!((res.finish_time - 26.0).abs() < 1e-9, "{}", res.finish_time);
    let tr = res.trace.unwrap();
    assert!((tr[0].speed - 8.0 / 21.0).abs() < 1e-12);
}

/// Figure 1b of the paper: A(8/5), then an OR with B(5/3)→F(8/6) at 30%
/// versus C(4/2)→G(5/3) at 70%, merging at O4. One processor, D = 30.
///
/// Worst path: A + (B+F) = 8 + 13 = 21 → Tw = 21.
/// Ta = 5 + 0.3·(3+6) + 0.7·(2+3) = 11.2.
/// LST_A = 30 − 21 = 9; LST_B = 30 − 13 = 17; LST_F = 30 − 8 = 22;
/// LST_C = 30 − 9 = 21 (its own path's remaining worst: 4+5);
/// LST_G = 30 − 5 = 25.
#[test]
fn figure_1b_hand_traced() {
    let app = Segment::seq([
        Segment::task("A", 8.0, 5.0),
        Segment::branch([
            (
                0.3,
                Segment::seq([Segment::task("B", 5.0, 3.0), Segment::task("F", 8.0, 6.0)]),
            ),
            (
                0.7,
                Segment::seq([Segment::task("C", 4.0, 2.0), Segment::task("G", 5.0, 3.0)]),
            ),
        ]),
    ]);
    let setup = Setup::with_deadline_and_overheads(
        app.lower().unwrap(),
        ProcessorModel::continuous(0.05).unwrap(),
        1,
        30.0,
        Overheads::none(),
    )
    .unwrap();
    assert!((setup.plan.worst_total - 21.0).abs() < 1e-12);
    assert!((setup.plan.avg_total - 11.2).abs() < 1e-12);
    assert!((lst_of(&setup, "A") - 9.0).abs() < 1e-12);
    assert!((lst_of(&setup, "B") - 17.0).abs() < 1e-12);
    assert!((lst_of(&setup, "F") - 22.0).abs() < 1e-12);
    assert!((lst_of(&setup, "C") - 21.0).abs() < 1e-12);
    assert!((lst_of(&setup, "G") - 25.0).abs() < 1e-12);

    // PMP statistics at the branch OR.
    let or = setup
        .graph
        .iter()
        .find(|(_, n)| n.kind.is_or() && n.succs.len() == 2)
        .unwrap()
        .0;
    assert!((setup.plan.branch_worst[&(or, 0)] - 13.0).abs() < 1e-12);
    assert!((setup.plan.branch_worst[&(or, 1)] - 9.0).abs() < 1e-12);
    assert!((setup.plan.branch_avg[&(or, 0)] - 9.0).abs() < 1e-12);
    assert!((setup.plan.branch_avg[&(or, 1)] - 5.0).abs() < 1e-12);

    // GSS down the 70% path at worst case: A stretches over [0, 17]
    // (speed 8/17); the OR fires at 17; C over [17, 17+(4+(21-17))] ...
    // C's window is LST_C + c = 25, so C runs at 4/8 = 0.5 ending at 25;
    // G runs at 5/5 = 1.0 ending exactly at 30.
    let scenarios: Vec<_> = setup.sections.enumerate_scenarios(&setup.graph).collect();
    let (seventy, _) = scenarios
        .iter()
        .find(|(_, p)| (*p - 0.7).abs() < 1e-12)
        .unwrap();
    let real = Realization::worst_case(&setup.graph, seventy.clone());
    let mut policy = setup.policy(Scheme::Gss);
    let res = setup
        .simulator(true)
        .run(policy.as_mut(), &real)
        .expect("run succeeds");
    assert!((res.finish_time - 30.0).abs() < 1e-9);
    let tr = res.trace.unwrap();
    let speeds: Vec<f64> = tr.iter().map(|e| e.speed).collect();
    assert!((speeds[0] - 8.0 / 17.0).abs() < 1e-12, "A: {}", speeds[0]);
    assert!((speeds[1] - 0.5).abs() < 1e-12, "C: {}", speeds[1]);
    assert!((speeds[2] - 1.0).abs() < 1e-12, "G: {}", speeds[2]);
}

/// LTF tie-breaking and multiprocessor packing, hand-checked: five tasks
/// (9, 7, 5, 3, 3) on two processors.
///
/// LTF order: 9, 7, 5, 3, 3. Schedule: 9 on p0 [0,9]; 7 on p1 [0,7];
/// 5 on p1 [7,12]; 3 on p0 [9,12]; 3 on p1/p0 [12,15]. Makespan 15.
#[test]
fn ltf_packing_hand_traced() {
    let app = Segment::par([
        Segment::task("t9", 9.0, 9.0),
        Segment::task("t7", 7.0, 7.0),
        Segment::task("t5", 5.0, 5.0),
        Segment::task("t3a", 3.0, 3.0),
        Segment::task("t3b", 3.0, 3.0),
    ]);
    let setup = Setup::with_deadline_and_overheads(
        app.lower().unwrap(),
        ProcessorModel::continuous(0.05).unwrap(),
        2,
        15.0, // exactly the canonical makespan: zero slack
        Overheads::none(),
    )
    .unwrap();
    assert!((setup.plan.worst_total - 15.0).abs() < 1e-12);
    // At zero slack, NPM and GSS coincide.
    let scen = setup
        .sections
        .enumerate_scenarios(&setup.graph)
        .next()
        .map(|(s, _)| s)
        .unwrap();
    let real = Realization::worst_case(&setup.graph, scen);
    for scheme in [Scheme::Npm, Scheme::Gss] {
        let res = setup.run(scheme, &real).expect("run succeeds");
        assert!(
            (res.finish_time - 15.0).abs() < 1e-9,
            "{scheme}: {}",
            res.finish_time
        );
    }
}

/// Regression anchor: the synthetic application's off-line quantities on
/// 2 processors must stay exactly as first computed (WCETs are integers,
/// so these are exact).
#[test]
fn synthetic_app_plan_snapshot() {
    let setup = Setup::with_deadline_and_overheads(
        synthetic_app().lower().unwrap(),
        ProcessorModel::transmeta5400(),
        2,
        118.0,
        Overheads::none(),
    )
    .unwrap();
    assert_eq!(setup.plan.worst_total, 59.0);
    // Ta, hand-derived: root section at ACET on 2 procs = 5 + max(3,2) = 8;
    // branch mix = 0.35·(4 + 2 + E[extra loop iters]·2 = 8.1) + 0.65·(6+3)
    // = 8.685; H∥I = 8; final mix = 0.3·2 + 0.7·11 = 8.3. Total 32.985.
    assert!(
        (setup.plan.avg_total - 32.985).abs() < 1e-9,
        "{}",
        setup.plan.avg_total
    );
    assert_eq!(setup.sections.len(), 15);
    let scenarios: Vec<_> = setup.sections.enumerate_scenarios(&setup.graph).collect();
    assert_eq!(scenarios.len(), 10);
}
