//! Property-based tests: the deadline guarantee and basic energy sanity
//! must hold on *arbitrary* valid AND/OR applications, not just the two
//! paper workloads.

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::{Overheads, ProcessorModel};
use pas_andor::sim::{ExecTimeModel, Realization};
use pas_andor::workloads::RandomAppParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_model() -> impl Strategy<Value = ProcessorModel> {
    prop_oneof![
        Just(ProcessorModel::transmeta5400()),
        Just(ProcessorModel::xscale()),
        (0.05f64..0.9).prop_map(|s| ProcessorModel::continuous(s).unwrap()),
        (2usize..12, 0.1f64..0.8)
            .prop_map(|(n, r)| { ProcessorModel::synthetic(800.0, n, r, 0.9, 1.7).unwrap() }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No random application, platform, load, overhead or realization may
    /// produce a deadline miss under any scheme.
    #[test]
    fn no_scheme_ever_misses_deadline(
        app_seed in 0u64..10_000,
        real_seed in 0u64..10_000,
        model in arb_model(),
        procs in 1usize..5,
        load in 0.1f64..1.0,
        overhead_us in 0f64..200.0,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let setup = Setup::for_load_with_overheads(
            app,
            model,
            procs,
            load,
            Overheads::new(300.0, overhead_us / 1000.0).unwrap(),
        )
        .expect("load <= 1 keeps the plan feasible");
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in Scheme::ALL {
            let res = setup.run(scheme, &real).expect("run succeeds");
            prop_assert!(
                !res.missed_deadline,
                "{} missed: {} > {} (app_seed={}, procs={}, load={})",
                scheme.name(), res.finish_time, res.deadline, app_seed, procs, load
            );
        }
    }

    /// The worst-case realization of the most likely scenario never misses
    /// either (adversarial execution times, not just sampled ones).
    #[test]
    fn worst_case_realization_never_misses(
        app_seed in 0u64..10_000,
        procs in 1usize..4,
        load in 0.3f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let setup = Setup::for_load(app, ProcessorModel::xscale(), procs, load).unwrap();
        let scenario = setup.sections.sample_scenario(&setup.graph, &mut rng);
        let real = Realization::worst_case(&setup.graph, scenario);
        for scheme in Scheme::ALL {
            let res = setup.run(scheme, &real).expect("run succeeds");
            prop_assert!(!res.missed_deadline, "{} missed", scheme.name());
        }
    }

    /// Managed schemes never burn more energy than NPM on the same
    /// realization... except for bounded speed-change overhead energy.
    #[test]
    fn managed_energy_bounded_by_npm_plus_overhead(
        app_seed in 0u64..10_000,
        real_seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let setup = Setup::for_load(app, ProcessorModel::transmeta5400(), 2, 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let npm = setup.run(Scheme::Npm, &real).expect("run succeeds");
        for scheme in Scheme::MANAGED {
            let res = setup.run(scheme, &real).expect("run succeeds");
            // Overhead energy is the only component that can exceed NPM's
            // consumption (NPM performs no transitions and runs no PMPs).
            let slack_for_overhead = res.energy.transition_energy()
                + 0.01 * npm.total_energy();
            prop_assert!(
                res.total_energy() <= npm.total_energy() + slack_for_overhead,
                "{}: {} vs NPM {}",
                scheme.name(), res.total_energy(), npm.total_energy()
            );
        }
    }

    /// Extreme magnitudes: the pipeline stays correct when WCETs span
    /// microseconds to minutes (numerical-robustness check).
    #[test]
    fn extreme_wcet_magnitudes_stay_safe(
        scale_exp in -3i32..4,
        app_seed in 0u64..1000,
        real_seed in 0u64..1000,
    ) {
        let scale = 10f64.powi(scale_exp);
        let mut rng = StdRng::seed_from_u64(app_seed);
        let base = RandomAppParams {
            wcet_range: (1.0 * scale, 10.0 * scale),
            ..Default::default()
        };
        let app = base.generate(&mut rng).lower().unwrap();
        let setup = Setup::for_load(app, ProcessorModel::transmeta5400(), 2, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in [Scheme::Gss, Scheme::As, Scheme::Spm] {
            let res = setup.run(scheme, &real).expect("run succeeds");
            prop_assert!(!res.missed_deadline, "{} at scale 1e{}", scheme.name(), scale_exp);
            prop_assert!(res.total_energy().is_finite());
        }
    }

    /// Determinism: identical seeds produce identical runs.
    #[test]
    fn runs_are_deterministic(app_seed in 0u64..1000, real_seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let setup = Setup::for_load(app, ProcessorModel::xscale(), 2, 0.7).unwrap();
        let real_a = {
            let mut r = StdRng::seed_from_u64(real_seed);
            setup.sample(&ExecTimeModel::paper_defaults(), &mut r)
        };
        let real_b = {
            let mut r = StdRng::seed_from_u64(real_seed);
            setup.sample(&ExecTimeModel::paper_defaults(), &mut r)
        };
        for scheme in Scheme::ALL {
            let a = setup.run(scheme, &real_a).expect("run succeeds");
            let b = setup.run(scheme, &real_b).expect("run succeeds");
            prop_assert_eq!(a.finish_time, b.finish_time);
            prop_assert_eq!(a.total_energy(), b.total_energy());
        }
    }
}
