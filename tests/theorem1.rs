//! Theorem 1 (and its extension to the speculative schemes): for any
//! execution path of a feasible AND/OR application, every scheme finishes
//! by the deadline — including at the absolute worst case and with
//! overheads and discrete speed levels enabled.

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::{Overheads, ProcessorModel};
use pas_andor::sim::{ExecTimeModel, Realization};
use pas_andor::workloads::{synthetic_app, AtrParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn models() -> Vec<ProcessorModel> {
    vec![
        ProcessorModel::transmeta5400(),
        ProcessorModel::xscale(),
        ProcessorModel::continuous(0.15).unwrap(),
        ProcessorModel::synthetic(1000.0, 3, 0.3, 1.0, 1.8).unwrap(),
    ]
}

fn apps() -> Vec<pas_andor::graph::AndOrGraph> {
    let mut rng = StdRng::seed_from_u64(1);
    vec![
        synthetic_app().lower().unwrap(),
        AtrParams::default()
            .build_jittered(&mut rng)
            .unwrap()
            .lower()
            .unwrap(),
    ]
}

/// Every scenario at full WCET: the strongest adversary for the guarantee.
#[test]
fn worst_case_of_every_scenario_meets_deadline() {
    for app in apps() {
        for model in models() {
            for procs in [1, 2, 4] {
                for load in [0.4, 0.8, 1.0] {
                    let setup =
                        Setup::for_load(app.clone(), model.clone(), procs, load).expect("feasible");
                    let scenarios: Vec<_> =
                        setup.sections.enumerate_scenarios(&setup.graph).collect();
                    for (scenario, _) in scenarios {
                        let real = Realization::worst_case(&setup.graph, scenario);
                        for scheme in Scheme::ALL {
                            let res = setup.run(scheme, &real).expect("run succeeds");
                            assert!(
                                !res.missed_deadline,
                                "{scheme} missed at procs={procs} load={load} \
                                 model={}: {} > {}",
                                model.name(),
                                res.finish_time,
                                res.deadline
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Large transition overheads must be absorbed by the reservation logic,
/// not blow the deadline.
#[test]
fn guarantee_survives_heavy_overheads() {
    let app = synthetic_app().lower().unwrap();
    for overhead_ms in [0.0, 0.1, 0.5, 1.0] {
        let setup = Setup::for_load_with_overheads(
            app.clone(),
            ProcessorModel::xscale(),
            2,
            0.9,
            Overheads::new(1000.0, overhead_ms).unwrap(),
        )
        .expect("feasible");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
            for scheme in Scheme::ALL {
                let res = setup.run(scheme, &real).expect("run succeeds");
                assert!(
                    !res.missed_deadline,
                    "{scheme} missed with overhead {overhead_ms} ms: {} > {}",
                    res.finish_time, res.deadline
                );
            }
        }
    }
}

/// The engine at full speed with WCETs reproduces the canonical schedule:
/// the worst scenario finishes exactly at `Tw` (modulo float noise), and
/// no scenario finishes later.
#[test]
fn canonical_schedule_matches_engine_replay() {
    for app in apps() {
        for procs in [1, 2, 3] {
            let setup = Setup::for_load_with_overheads(
                app.clone(),
                ProcessorModel::transmeta5400(),
                procs,
                1.0, // deadline == Tw: zero static slack
                Overheads::none(),
            )
            .unwrap();
            let scenarios: Vec<_> = setup.sections.enumerate_scenarios(&setup.graph).collect();
            let mut worst = 0.0_f64;
            for (scenario, _) in scenarios {
                let real = Realization::worst_case(&setup.graph, scenario);
                let res = setup.run(Scheme::Npm, &real).expect("run succeeds");
                assert!(
                    res.finish_time <= setup.plan.worst_total + 1e-9,
                    "a scenario finished after Tw"
                );
                worst = worst.max(res.finish_time);
            }
            assert!(
                (worst - setup.plan.worst_total).abs() < 1e-9,
                "worst scenario ({worst}) must realize Tw ({})",
                setup.plan.worst_total
            );
        }
    }
}

/// With zero static slack, α = 1 (no dynamic slack) and a *single
/// execution path* (no OR path slack either), every scheme degenerates to
/// full speed and still fits exactly. (With OR nodes this would not hold:
/// shorter alternative paths legitimately carry path slack even at
/// load 1.)
#[test]
fn zero_slack_degenerates_to_npm_timing() {
    use pas_andor::graph::Segment;
    let app = Segment::seq([
        Segment::task("A", 6.0, 6.0),
        Segment::par([Segment::task("B", 5.0, 5.0), Segment::task("C", 7.0, 7.0)]),
        Segment::task("D", 3.0, 3.0),
    ])
    .lower()
    .unwrap();
    let setup =
        Setup::for_load_with_overheads(app, ProcessorModel::xscale(), 2, 1.0, Overheads::none())
            .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..50 {
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let npm = setup.run(Scheme::Npm, &real).expect("run succeeds");
        for scheme in Scheme::MANAGED {
            let res = setup.run(scheme, &real).expect("run succeeds");
            assert!(!res.missed_deadline, "{scheme}");
            assert!(
                (res.finish_time - npm.finish_time).abs() < 1e-6,
                "{scheme}: no slack anywhere, timing must equal NPM \
                 ({} vs {})",
                res.finish_time,
                npm.finish_time
            );
        }
    }
}
