//! Observability must never perturb behavior.
//!
//! The span profiler records wall-clock timings on the side; enabling it
//! must not change a single byte of any deterministic artifact — the
//! serialized [`PlanArtifact`] JSON and the fault-free schedule traces
//! are compared byte-for-byte with profiling on and off. And the latency
//! quantile estimator behind the `pas serve` telemetry must be monotone
//! in the requested quantile for arbitrary fills, or the reported
//! p50/p95/p99 triple could invert.

use pas_andor::core::{sha256_hex, PlanArtifact, Scheme, Setup};
use pas_andor::obs::{log, profile};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use pas_andor::stats::Histogram;
use pas_andor::workloads::synthetic_app;
use pas_serve::{ServeConfig, Service};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;

const SEED: u64 = 0x60_1DE2;

fn fresh_setup() -> Setup {
    let app = synthetic_app().lower().expect("synthetic app lowers");
    Setup::for_load(app, ProcessorModel::transmeta5400(), 2, 0.6).expect("feasible setup")
}

/// Serialized plan artifacts for all six schemes from a freshly built
/// setup (so the profiled run re-executes the whole offline phase).
fn artifact_jsons() -> Vec<String> {
    let setup = fresh_setup();
    Scheme::ALL
        .iter()
        .map(|scheme| {
            PlanArtifact::from_setup(&setup, *scheme, "synthetic", "transmeta")
                .to_json()
                .expect("artifact serializes")
        })
        .collect()
}

/// One fault-free traced run rendered as stable text: equal bits ⇔
/// equal text (same idea as the golden trace suite).
fn traced_run() -> String {
    let setup = fresh_setup();
    let mut rng = StdRng::seed_from_u64(SEED);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    let mut policy = setup.policy(Scheme::Gss);
    let res = setup
        .simulator(true)
        .run(policy.as_mut(), &real)
        .expect("fault-free run succeeds");
    let trace = serde_json::to_string(res.trace.as_ref().expect("trace recorded"))
        .expect("trace serializes");
    format!(
        "{};{};{};{}",
        res.finish_time,
        res.missed_deadline,
        res.total_energy(),
        trace
    )
}

#[test]
fn profiling_does_not_perturb_artifacts_or_traces() {
    let baseline_artifacts = artifact_jsons();
    let baseline_trace = traced_run();

    let (profiled_artifacts, profiled_trace, spans) = {
        // Hold the profiler session lock so concurrent tests cannot
        // enable/drain the process-global recorder mid-comparison.
        let _session = profile::exclusive();
        profile::enable();
        let artifacts = artifact_jsons();
        let trace = traced_run();
        profile::disable();
        (artifacts, trace, profile::take())
    };

    assert!(
        spans
            .iter()
            .any(|s| s.name == profile::names::OFFLINE_BUILD),
        "the profiled run must actually exercise the instrumented offline phase"
    );
    assert_eq!(
        baseline_artifacts, profiled_artifacts,
        "plan artifact JSON must be byte-identical with profiling enabled"
    );
    assert_eq!(
        baseline_trace, profiled_trace,
        "fault-free traces must be byte-identical with profiling enabled"
    );
}

/// The same invariant for the whole observability surface at once:
/// with structured logging at its most verbose level *and* per-request
/// tracing enabled, plan artifacts and fault-free traces stay
/// byte-identical to the all-disabled path — across all six schemes,
/// both through the library and through a `pas serve` round trip.
#[test]
fn logging_and_tracing_do_not_perturb_artifacts_or_traces() {
    let baseline_artifacts = artifact_jsons();
    let baseline_trace = traced_run();
    let baseline_digests: Vec<String> = baseline_artifacts
        .iter()
        .map(|json| sha256_hex(json.as_bytes()))
        .collect();

    // Everything on: profiler recording, logger at `trace` level into a
    // discard sink, and a service answering `"trace": true` requests.
    let _profile_session = profile::exclusive();
    let _log_session = log::exclusive();
    log::init(
        Some(Box::new(std::io::sink())),
        log::Level::Trace,
        log::DEFAULT_RING_CAP,
    );
    profile::enable();

    let enabled_artifacts = artifact_jsons();
    let enabled_trace = traced_run();

    let svc = Service::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut served_digests = Vec::with_capacity(Scheme::ALL.len());
    for scheme in Scheme::ALL {
        let resp = svc.handle_line(&format!(
            r#"{{"id":"np-{name}","kind":"plan","workload":"synthetic","platform":"transmeta","procs":2,"load":0.6,"scheme":"{name}","trace":true}}"#,
            name = scheme.name()
        ));
        let v: Value = serde_json::from_str(&resp).expect("valid JSON response");
        assert_eq!(
            v.get("status").and_then(Value::as_str),
            Some("ok"),
            "{resp}"
        );
        let digest = v
            .get("body")
            .and_then(|b| b.get("digest"))
            .and_then(Value::as_str)
            .expect("plan digest");
        served_digests.push(digest.to_string());
        // The echoed timeline covers the queue → cache → exec stages.
        let timeline = v
            .get("timeline")
            .and_then(Value::as_array)
            .expect("timeline");
        let names: Vec<&str> = timeline
            .iter()
            .filter_map(|s| s.get("name").and_then(Value::as_str))
            .collect();
        for required in ["req.queue_wait", "req.cache_lookup", "req.exec"] {
            assert!(names.contains(&required), "missing {required}: {names:?}");
        }
    }
    assert_eq!(svc.shutdown(), 0);

    profile::disable();
    let spans = profile::take();
    log::shutdown();

    assert!(
        spans
            .iter()
            .any(|s| s.name == profile::names::OFFLINE_BUILD),
        "the enabled pass must exercise the instrumented offline phase"
    );
    assert_eq!(
        baseline_artifacts, enabled_artifacts,
        "plan artifact JSON must be byte-identical with logging + tracing enabled"
    );
    assert_eq!(
        baseline_trace, enabled_trace,
        "fault-free traces must be byte-identical with logging + tracing enabled"
    );
    // The digest is the SHA-256 of the artifact's serialized bytes, so
    // digest equality proves the served artifacts match byte-for-byte.
    assert_eq!(
        baseline_digests, served_digests,
        "served plan artifacts must be byte-identical with logging + tracing enabled"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Histogram::quantile` is monotone in `q`: for any fill and any
    /// ordered set of probes (endpoints included), the estimates never
    /// decrease.
    #[test]
    fn histogram_quantile_is_monotone_in_q(
        values in proptest::collection::vec(-50f64..550.0, 1..200),
        probes in proptest::collection::vec(0f64..1.0, 2..16),
    ) {
        // Range narrower than the fill so clamping paths are exercised.
        let mut h = Histogram::new(0.0, 400.0, 64).expect("valid geometry");
        for v in &values {
            h.add(*v);
        }
        let mut qs = probes;
        qs.push(0.0);
        qs.push(1.0);
        qs.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for q in qs {
            let x = h.quantile(q).expect("non-empty histogram");
            prop_assert!(
                x >= prev,
                "quantile({q}) = {x} dropped below {prev} for {} values",
                values.len()
            );
            prev = x;
        }
    }
}
