//! Reproduction shape checks: the qualitative findings of the paper's §5
//! must hold in this implementation (absolute joules are not comparable —
//! the authors' testbed is gone — but who wins, where the curves bend, and
//! which effects appear are).
//!
//! Replication counts here are reduced (vs the paper's 1000) to keep test
//! time sane; the checked effects are far larger than the Monte-Carlo
//! noise at these counts.

use pas_andor::core::Scheme;
use pas_andor::experiments::figures::{fig_energy_vs_alpha, fig_energy_vs_load, load_axis};
use pas_andor::experiments::{ExperimentConfig, Platform};

fn cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(150);
    c.base_seed = 0x5EED;
    c
}

/// §5.1, Figure 4: "the normalized energy consumption starts by decreasing
/// with [load]... and starts increasing" — the idle-energy/minimum-speed
/// effect the paper calls counter-intuitive.
#[test]
fn energy_vs_load_falls_then_rises() {
    let out = fig_energy_vs_load(Platform::Transmeta, 2, &cfg());
    assert_eq!(out.total_misses, 0);
    let gss = &out.energy.series("GSS").unwrap().values;
    let min_idx = gss
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    // The minimum sits strictly inside the sweep: lower at moderate load
    // than at either extreme.
    assert!(min_idx > 0, "no initial decrease: {gss:?}");
    assert!(min_idx < gss.len() - 1, "no final increase: {gss:?}");
    assert!(gss[0] > gss[min_idx] + 0.01);
    assert!(*gss.last().unwrap() > gss[min_idx] + 0.01);
}

/// §5: at load 1.0 there is no static slack, so SPM degenerates to NPM.
#[test]
fn spm_equals_npm_at_full_load() {
    let out = fig_energy_vs_load(Platform::XScale, 2, &cfg());
    let spm = &out.energy.series("SPM").unwrap().values;
    let idx_full = load_axis().iter().position(|&l| l == 1.0).unwrap();
    assert!(
        (spm[idx_full] - 1.0).abs() < 1e-9,
        "SPM at load 1.0 must equal NPM: {}",
        spm[idx_full]
    );
}

/// §5.1: "the greedy scheme is better than some speculative algorithms
/// when S_min is rather high or there are fewer speed levels" — on the
/// XScale's 5 coarse levels GSS must beat at least one speculative scheme
/// somewhere in the load sweep.
#[test]
fn gss_beats_a_speculative_scheme_somewhere_on_xscale() {
    let out = fig_energy_vs_load(Platform::XScale, 2, &cfg());
    let gss = &out.energy.series("GSS").unwrap().values;
    let beats = ["SS(1)", "SS(2)", "AS"].iter().any(|name| {
        let spec = &out.energy.series(name).unwrap().values;
        gss.iter().zip(spec).any(|(g, s)| g < s)
    });
    assert!(beats, "GSS never beat any speculative scheme: {out:?}");
}

/// §3.3/§4: the speculative schemes exist to reduce the *number of speed
/// changes*; AS must change speed substantially less often than GSS.
#[test]
fn speculation_reduces_speed_changes() {
    let out = fig_energy_vs_load(Platform::Transmeta, 2, &cfg());
    let gss: f64 = out.speed_changes.series("GSS").unwrap().values.iter().sum();
    let asp: f64 = out.speed_changes.series("AS").unwrap().values.iter().sum();
    assert!(
        asp < 0.8 * gss,
        "AS must cut speed changes vs GSS: {asp} vs {gss}"
    );
    // NPM never changes speed at all.
    let npm: f64 = out.speed_changes.series("NPM").unwrap().values.iter().sum();
    assert_eq!(npm, 0.0);
}

/// §5.2, Figure 6: SPM only exploits *static* slack, so the dynamic
/// schemes' advantage over it is largest at small α (lots of dynamic
/// slack) and vanishes as α → 1 (none) — "the dynamic schemes become
/// worse relative to static power management when α becomes larger".
#[test]
fn alpha_sweep_dynamic_advantage_shrinks() {
    let out = fig_energy_vs_alpha(Platform::Transmeta, &cfg());
    assert_eq!(out.total_misses, 0);
    let spm = &out.energy.series("SPM").unwrap().values;
    let gss = &out.energy.series("GSS").unwrap().values;
    let advantage: Vec<f64> = spm.iter().zip(gss).map(|(s, g)| s - g).collect();
    assert!(
        advantage[1] > advantage[9] + 0.02,
        "GSS's edge over SPM must shrink with alpha: {advantage:?}"
    );
    // At α = 1 there is no dynamic slack left: GSS sits within a few
    // percent of SPM.
    assert!(
        (gss[9] - spm[9]).abs() < 0.08,
        "at alpha=1, GSS ≈ SPM: {} vs {}",
        gss[9],
        spm[9]
    );
    // "All the dynamic algorithms perform the best with moderate α": the
    // GSS curve is U-shaped with an interior minimum (at low α the
    // minimum-speed clamp and idle energy dominate; at high α there is no
    // dynamic slack).
    let min_idx = gss
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        min_idx > 0 && min_idx < gss.len() - 1,
        "GSS vs alpha should dip at moderate alpha: {gss:?}"
    );
    assert!(gss[0] > gss[min_idx] + 0.02);
    assert!(gss[9] > gss[min_idx] + 0.02);
}

/// §5 (conclusions): "when the number of processors increases, the
/// performance of the dynamic schemes decreases due to the limited
/// parallelism". Compare 2 vs 6 processors at moderate-to-high load.
#[test]
fn more_processors_hurt_dynamic_schemes() {
    let two = fig_energy_vs_load(Platform::Transmeta, 2, &cfg());
    let six = fig_energy_vs_load(Platform::Transmeta, 6, &cfg());
    // Average normalized GSS energy across the upper half of the load
    // sweep (where slowdown capability, not idle power, dominates).
    let avg_hi = |out: &pas_andor::experiments::figures::SweepOutput| {
        let v = &out.energy.series("GSS").unwrap().values;
        v[5..].iter().sum::<f64>() / (v.len() - 5) as f64
    };
    assert!(
        avg_hi(&six) > avg_hi(&two),
        "6-proc GSS should save less than 2-proc: {} vs {}",
        avg_hi(&six),
        avg_hi(&two)
    );
}

/// Figure 6 note: at α = 1 on the XScale, SS(1)'s speculative speed
/// degenerates to the static value (`Tᵃ = Tʷ`), so SS(1) and SPM coincide
/// (up to SS(1)'s per-task PMP computation overhead, which SPM does not
/// pay).
#[test]
fn ss1_equals_spm_at_alpha_one_on_xscale() {
    let out = fig_energy_vs_alpha(Platform::XScale, &cfg());
    let ss1 = out.energy.series("SS(1)").unwrap().values[9];
    let spm = out.energy.series("SPM").unwrap().values[9];
    assert!(
        (ss1 - spm).abs() < 1e-3,
        "SS(1) must coincide with SPM at alpha=1: {ss1} vs {spm}"
    );
}

/// On the fine-grained Transmeta table at high load, adaptive speculation
/// beats plain greedy (the levels are fine enough for speculation to pay
/// off — the flip side of the paper's S_min/levels explanation).
#[test]
fn as_beats_gss_at_high_load_on_fine_levels() {
    let out = fig_energy_vs_load(Platform::Transmeta, 2, &cfg());
    let gss = &out.energy.series("GSS").unwrap().values;
    let asp = &out.energy.series("AS").unwrap().values;
    // Average over the upper half of the load sweep.
    let hi = |v: &[f64]| v[5..].iter().sum::<f64>() / (v.len() - 5) as f64;
    assert!(
        hi(asp) < hi(gss) - 0.01,
        "AS should beat GSS at high load on Transmeta: {} vs {}",
        hi(asp),
        hi(gss)
    );
}

/// All managed schemes save energy at moderate load on both platforms.
#[test]
fn managed_schemes_save_at_moderate_load() {
    for platform in [Platform::Transmeta, Platform::XScale] {
        let out = fig_energy_vs_load(platform, 2, &cfg());
        let idx = 4; // load 0.5
        for scheme in Scheme::MANAGED {
            let v = out.energy.series(scheme.name()).unwrap().values[idx];
            assert!(
                v < 0.9,
                "{} on {} at load 0.5: {v}",
                scheme.name(),
                platform.name()
            );
        }
    }
}
