//! The serialized offline plan is a faithful, verifiable stand-in for
//! the in-memory one:
//!
//! * serialize → deserialize → serialize is byte-identical, and
//!   re-deriving the artifact from the same inputs reproduces the same
//!   bytes (the JSON form is canonical);
//! * an engine run *from the deserialized plan* renders byte-identical
//!   traces to a run from the directly-built [`Setup`], for all six
//!   schemes on both builtin platforms;
//! * a plan the verifier accepts never misses its deadline fault-free
//!   (the plan-level form of the Theorem-1 soundness argument).

use pas_andor::analyze::check_plan;
use pas_andor::core::{PlanArtifact, Scheme, Setup};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use pas_andor::workloads::{synthetic_app, RandomAppParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GOLDEN_SEED: u64 = 0x60_1DE2;

fn both_platforms() -> [(&'static str, ProcessorModel); 2] {
    [
        ("transmeta", ProcessorModel::transmeta5400()),
        ("xscale", ProcessorModel::xscale()),
    ]
}

/// Renders one traced run as stable JSON text (same idea as the golden
/// trace suite): equal bits ⇔ equal text.
fn render(setup: &Setup, scheme: Scheme, real: &pas_andor::sim::Realization) -> String {
    let mut policy = setup.policy(scheme);
    let res = setup
        .simulator(true)
        .run(policy.as_mut(), real)
        .expect("fault-free run succeeds");
    let trace = serde_json::to_string(res.trace.as_ref().expect("trace recorded"))
        .expect("trace serializes");
    format!(
        "{};{};{};{};{};{}",
        res.finish_time,
        res.missed_deadline,
        res.total_energy(),
        res.energy.speed_changes(),
        scheme.name(),
        trace
    )
}

/// All six schemes on both platforms: the deserialized plan drives the
/// engine to byte-identical traces.
#[test]
fn deserialized_plan_drives_byte_identical_traces() {
    let app = synthetic_app().lower().expect("synthetic app lowers");
    for (platform, model) in both_platforms() {
        let direct = Setup::for_load(app.clone(), model.clone(), 2, 0.6).expect("feasible");
        let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
        let real = direct.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in Scheme::ALL {
            let artifact = PlanArtifact::from_setup(&direct, scheme, "synthetic", platform);
            let json = artifact.to_json().expect("serializes");
            let from_disk = PlanArtifact::from_json(&json)
                .expect("parses")
                .into_setup(app.clone(), model.clone())
                .expect("shape-checks against its own graph");
            assert_eq!(
                render(&direct, scheme, &real),
                render(&from_disk, scheme, &real),
                "{} on {platform}: run from deserialized plan diverged",
                scheme.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serialization is canonical on arbitrary valid applications:
    /// round-tripping reproduces the bytes, and so does independently
    /// re-deriving the artifact from the same setup.
    #[test]
    fn round_trip_is_byte_identical(
        app_seed in 0u64..10_000,
        scheme_ix in 0usize..Scheme::ALL.len(),
        procs in 1usize..4,
        load in 0.2f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let scheme = Scheme::ALL[scheme_ix];
        for (platform, model) in both_platforms() {
            let setup = Setup::for_load(app.clone(), model, procs, load)
                .expect("load <= 1 keeps the plan feasible");
            let artifact = PlanArtifact::from_setup(&setup, scheme, "random", platform);
            let json = artifact.to_json().expect("serializes");
            let reparsed = PlanArtifact::from_json(&json).expect("parses");
            prop_assert_eq!(
                &json,
                &reparsed.to_json().expect("re-serializes"),
                "round trip changed bytes for {} on {}", scheme.name(), platform
            );
            let rederived = PlanArtifact::from_setup(&setup, scheme, "random", platform);
            prop_assert_eq!(
                &json,
                &rederived.to_json().expect("serializes"),
                "re-derivation changed bytes for {} on {}", scheme.name(), platform
            );
        }
    }

    /// A verified plan is sound: `check_plan` accepting the artifact
    /// implies the engine, running *from the deserialized plan*, meets
    /// the deadline fault-free under every scheme.
    #[test]
    fn verified_plan_implies_no_fault_free_miss(
        app_seed in 0u64..10_000,
        real_seed in 0u64..10_000,
        procs in 1usize..4,
        load in 0.2f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        for (platform, model) in both_platforms() {
            let setup = Setup::for_load(app.clone(), model.clone(), procs, load)
                .expect("load <= 1 keeps the plan feasible");
            for scheme in Scheme::ALL {
                let artifact = PlanArtifact::from_setup(&setup, scheme, "random", platform);
                let report = check_plan(&artifact, "plan", &app, "random", &model);
                prop_assert!(
                    !report.has_errors(),
                    "honest artifact rejected ({} on {platform}): {}",
                    scheme.name(),
                    report.render_human()
                );
                let json = artifact.to_json().expect("serializes");
                let run_setup = PlanArtifact::from_json(&json)
                    .expect("parses")
                    .into_setup(app.clone(), model.clone())
                    .expect("verified plan fits its graph");
                let mut rng = StdRng::seed_from_u64(real_seed);
                let real = run_setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
                let res = run_setup.run(scheme, &real).expect("run succeeds");
                prop_assert!(
                    !res.missed_deadline,
                    "{} missed from verified plan on {platform} \
                     (app_seed={app_seed}, load={load})",
                    scheme.name()
                );
            }
        }
    }
}
