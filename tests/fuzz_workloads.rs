//! Structured workload fuzzing: a seeded mutator corrupts valid
//! applications in targeted ways (bad times, broken probabilities,
//! dangling/duplicate/self edges, dropped nodes, kind swaps) and feeds
//! each mutant to the static analyzer. Two properties must hold on
//! every mutant:
//!
//! 1. the analyzer never panics — malformed input produces diagnostics,
//!    not crashes;
//! 2. the analyzer never *accepts* a graph the runtime rejects: a clean
//!    `check_application` implies the graph validates, the plan builds,
//!    and a seeded run completes.

use pas_andor::analyze::{
    analyze_bounds, check_application, BoundsConfig, Code, DeadlineSpec, FaultEnvelope,
};
use pas_andor::core::{Scheme, Setup};
use pas_andor::graph::{AndOrGraph, Node, NodeId, NodeKind};
use pas_andor::power::{Overheads, ProcessorModel};
use pas_andor::sim::ExecTimeModel;
use pas_andor::workloads::{synthetic_app, RandomAppParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Rebuilds a graph from raw nodes through the same serde path
/// `pas check` loads files with. Returns `None` when the mutant does
/// not even parse (non-finite floats and the like) — such inputs are
/// rejected before the analyzer ever sees them, so they are out of
/// scope here.
fn rebuild(nodes: Vec<Node>) -> Option<AndOrGraph> {
    #[derive(Serialize)]
    struct Wire {
        nodes: Vec<Node>,
    }
    let json = serde_json::to_string(&Wire { nodes }).ok()?;
    serde_json::from_str(&json).ok()
}

/// One random structural corruption, in place.
fn mutate(nodes: &mut Vec<Node>, rng: &mut StdRng) {
    if nodes.is_empty() {
        return;
    }
    let i = rng.gen_range(0..nodes.len());
    let n = nodes.len();
    match rng.gen_range(0..10u32) {
        // Execution-time corruption.
        0 => {
            if let NodeKind::Computation { wcet, acet } = &mut nodes[i].kind {
                match rng.gen_range(0..4u32) {
                    0 => *wcet = -1.0,
                    1 => *wcet = 0.0,
                    2 => *acet = *wcet * 2.0,
                    _ => *wcet = 1e12,
                }
            }
        }
        // Probability corruption.
        1 => {
            if let NodeKind::Or { probs } = &mut nodes[i].kind {
                if !probs.is_empty() {
                    let k = rng.gen_range(0..probs.len());
                    probs[k] = [-0.2, 0.0, 1.7, probs[k] * 1.5][rng.gen_range(0..4usize)];
                }
            }
        }
        // Arity corruption: extra or missing probability entry.
        2 => {
            if let NodeKind::Or { probs } = &mut nodes[i].kind {
                if rng.gen_bool(0.5) {
                    probs.push(0.5);
                } else {
                    probs.pop();
                }
            }
        }
        // Dangling edge.
        3 => nodes[i].succs.push(NodeId((n + 3) as u32)),
        // Duplicate edge.
        4 => {
            if let Some(&s) = nodes[i].succs.first() {
                nodes[i].succs.push(s);
            }
        }
        // Self loop.
        5 => nodes[i].preds.push(NodeId(i as u32)),
        // One-sided edge (adjacency disagreement).
        6 => {
            let j = rng.gen_range(0..n);
            nodes[i].succs.push(NodeId(j as u32));
        }
        // Disconnect a node.
        7 => {
            nodes[i].preds.clear();
            nodes[i].succs.clear();
        }
        // Kind swap: task becomes a zero-time sync node (or back).
        8 => {
            nodes[i].kind = match nodes[i].kind {
                NodeKind::Computation { .. } => NodeKind::And,
                _ => NodeKind::Computation {
                    wcet: 2.0,
                    acet: 1.0,
                },
            };
        }
        // Drop the last node, leaving its edges dangling elsewhere.
        _ => {
            nodes.pop();
        }
    }
}

fn seed_corpus() -> Vec<AndOrGraph> {
    let mut corpus = vec![synthetic_app().lower().expect("synthetic lowers")];
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        corpus.push(
            RandomAppParams::default()
                .generate(&mut rng)
                .lower()
                .expect("random app lowers"),
        );
    }
    corpus
}

#[test]
fn analyzer_survives_and_stays_sound_on_mutated_workloads() {
    let corpus = seed_corpus();
    let model = ProcessorModel::transmeta5400();
    let mut rng = StdRng::seed_from_u64(0xF022);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for case in 0..400 {
        let base = &corpus[case % corpus.len()];
        let mut nodes = base.nodes().to_vec();
        for _ in 0..rng.gen_range(1..4u32) {
            mutate(&mut nodes, &mut rng);
        }
        let Some(g) = rebuild(nodes) else { continue };
        // Property 1: the analyzer must not panic on any mutant.
        let analysis = check_application(
            &g,
            "mutant",
            &model,
            "transmeta",
            Overheads::paper_defaults(),
            2,
            DeadlineSpec::Load(0.5),
        );
        if analysis.report.has_errors() {
            rejected += 1;
            continue;
        }
        accepted += 1;
        // Property 2: accepted ⇒ the runtime agrees end to end.
        g.validate().unwrap_or_else(|e| {
            panic!("analyzer accepted but validate() rejected (case {case}): {e}")
        });
        let setup = Setup::for_load(g, model.clone(), 2, 0.5).unwrap_or_else(|e| {
            panic!("analyzer accepted but the offline phase rejected (case {case}): {e}")
        });
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in Scheme::ALL {
            let res = setup
                .run(scheme, &real)
                .unwrap_or_else(|e| panic!("accepted mutant fails to run (case {case}): {e}"));
            assert!(
                !res.missed_deadline,
                "accepted mutant missed fault-free under {} (case {case})",
                scheme.name()
            );
        }
    }
    // The mutator must actually exercise both sides of the verdict.
    assert!(rejected > 50, "mutator too tame: only {rejected} rejected");
    assert!(accepted > 10, "mutator too harsh: only {accepted} accepted");
}

/// The symbolic bounds analyzer must survive the same mutant corpus:
/// for every mutant whose offline phase still builds, `analyze_bounds`
/// must not panic, must keep every interval ordered (`lo <= hi`), and
/// must never trip its own `PAS0601` self-check — fault-free and under
/// a fault envelope alike.
#[test]
fn bounds_analyzer_survives_mutated_workloads() {
    let corpus = seed_corpus();
    let model = ProcessorModel::transmeta5400();
    let mut rng = StdRng::seed_from_u64(0xF022);
    let envelope = FaultEnvelope {
        overrun_factor: 1.5,
        stall_ms: 2.0,
    };
    let mut analyzed = 0u32;
    for case in 0..400 {
        let base = &corpus[case % corpus.len()];
        let mut nodes = base.nodes().to_vec();
        for _ in 0..rng.gen_range(1..4u32) {
            mutate(&mut nodes, &mut rng);
        }
        let Some(g) = rebuild(nodes) else { continue };
        // Bounds are only defined over inputs the structural checks
        // accept (`pas check --bounds` gates the same way); everything
        // else is rejected upstream with PAS00xx diagnostics.
        let analysis = check_application(
            &g,
            "mutant",
            &model,
            "transmeta",
            Overheads::paper_defaults(),
            2,
            DeadlineSpec::Load(0.5),
        );
        if analysis.report.has_errors() {
            continue;
        }
        let Ok(setup) = Setup::for_load(g, model.clone(), 2, 0.5) else {
            continue;
        };
        analyzed += 1;
        for fault in [None, Some(envelope)] {
            let cfg = BoundsConfig {
                fault,
                ..BoundsConfig::default()
            };
            let ba = analyze_bounds(&setup, &cfg, "mutant");
            for d in &ba.report.diagnostics {
                assert!(
                    d.code != Code::Pas0601,
                    "bounds self-check failed on case {case} (fault={}): {}",
                    fault.is_some(),
                    d.message
                );
            }
            for s in &ba.schemes {
                for (what, iv) in [("energy", s.energy), ("makespan", s.makespan)] {
                    let slack = 1e-9 * (1.0 + iv.lo.abs().max(iv.hi.abs()));
                    assert!(
                        iv.lo.is_finite() && iv.hi.is_finite() && iv.lo <= iv.hi + slack,
                        "case {case}: {}: inverted {what} interval [{}, {}]",
                        s.scheme,
                        iv.lo,
                        iv.hi
                    );
                }
                assert!(
                    s.optimality_gap >= -1e-6,
                    "case {case}: {}: negative optimality gap {}",
                    s.scheme,
                    s.optimality_gap
                );
            }
        }
    }
    // The corpus must actually reach the analyzer.
    assert!(analyzed > 10, "corpus too harsh: only {analyzed} analyzed");
}
