//! Scale tests: the pipeline must handle applications far larger than the
//! paper's examples — hundreds of tasks, hundreds of scenarios — without
//! blowing up algorithmically (the offline phase is near-linear per
//! section; scenario enumeration is linear in the scenario count).

use pas_andor::core::{Scheme, Setup};
use pas_andor::graph::SectionGraph;
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use pas_andor::workloads::{AtrParams, RandomAppParams, VideoParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn large_atr_instance_end_to_end() {
    // 8 ROIs max, 8 templates, 2 frames: ~150 tasks on the heaviest path,
    // 64 scenarios.
    let params = AtrParams {
        max_rois: 8,
        roi_probs: vec![0.20, 0.20, 0.15, 0.13, 0.12, 0.10, 0.06, 0.04],
        num_templates: 8,
        frames: 2,
        ..AtrParams::default()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let g = params.build_jittered(&mut rng).unwrap().lower().unwrap();
    assert!(
        g.num_tasks() > 300,
        "expected a large instance: {}",
        g.num_tasks()
    );
    let sg = SectionGraph::build(&g).unwrap();
    let scenarios: Vec<_> = sg.enumerate_scenarios(&g).collect();
    assert_eq!(scenarios.len(), 64);

    let setup = Setup::for_load(g, ProcessorModel::xscale(), 4, 0.7).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..5 {
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in [Scheme::Gss, Scheme::As] {
            let res = setup.run(scheme, &real).expect("run succeeds");
            assert!(!res.missed_deadline);
        }
    }
}

#[test]
fn long_video_gop_end_to_end() {
    // 6 frames × 3 types = 729 scenarios; ~100 tasks per path.
    let params = VideoParams {
        frames: 6,
        slices: 6,
        ..VideoParams::default()
    };
    let g = params.build().unwrap().lower().unwrap();
    let sg = SectionGraph::build(&g).unwrap();
    assert_eq!(sg.enumerate_scenarios(&g).count(), 729);
    let setup = Setup::for_load(g, ProcessorModel::transmeta5400(), 6, 0.6).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    for scheme in Scheme::ALL {
        assert!(
            !setup
                .run(scheme, &real)
                .expect("run succeeds")
                .missed_deadline,
            "{scheme}"
        );
    }
}

#[test]
fn deep_random_apps_stay_correct() {
    let params = RandomAppParams {
        max_depth: 6,
        max_seq_len: 4,
        ..RandomAppParams::default()
    };
    let mut biggest = 0usize;
    for seed in 0..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = params.generate(&mut rng).lower().unwrap();
        biggest = biggest.max(g.num_tasks());
        let setup = match Setup::for_load(g, ProcessorModel::xscale(), 3, 0.8) {
            Ok(s) => s,
            Err(e) => panic!("seed {seed}: {e}"),
        };
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let res = setup.run(Scheme::Gss, &real).expect("run succeeds");
        assert!(!res.missed_deadline, "seed {seed}");
    }
    assert!(
        biggest > 100,
        "generator should reach large sizes: {biggest}"
    );
}
