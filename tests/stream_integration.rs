//! Integration tests for periodic (streaming) execution across schemes.

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::{run_stream, ExecTimeModel, Realization};
use pas_andor::workloads::VideoParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> Setup {
    let g = VideoParams::default().build().unwrap().lower().unwrap();
    Setup::for_load(g, ProcessorModel::xscale(), 2, 0.6).unwrap()
}

fn frames(setup: &Setup, n: usize, seed: u64) -> Vec<Realization> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| setup.sample(&ExecTimeModel::paper_defaults(), &mut rng))
        .collect()
}

#[test]
fn every_scheme_streams_without_misses() {
    let s = setup();
    let fs = frames(&s, 20, 7);
    for scheme in Scheme::ALL {
        for carry in [false, true] {
            let sim = s.simulator(false);
            let mut policy = s.policy(scheme);
            let out = run_stream(&sim, policy.as_mut(), &fs, carry).expect("stream runs");
            assert_eq!(
                out.misses,
                0,
                "{} missed deadlines in stream (carry={carry})",
                scheme.name()
            );
            assert_eq!(out.frame_finish.len(), 20);
            for f in &out.frame_finish {
                assert!(*f <= s.plan.deadline + 1e-9);
            }
        }
    }
}

#[test]
fn cold_stream_equals_independent_runs() {
    let s = setup();
    let fs = frames(&s, 10, 13);
    for scheme in [Scheme::Gss, Scheme::As, Scheme::Spm] {
        let sim = s.simulator(false);
        let mut policy = s.policy(scheme);
        let stream_energy = run_stream(&sim, policy.as_mut(), &fs, false)
            .expect("stream runs")
            .total_energy();
        let sum: f64 = fs
            .iter()
            .map(|r| s.run(scheme, r).expect("run succeeds").total_energy())
            .sum();
        assert!(
            (stream_energy - sum).abs() < 1e-6,
            "{}: {} vs {}",
            scheme.name(),
            stream_energy,
            sum
        );
    }
}

#[test]
fn warm_stream_energy_stays_close_to_cold() {
    // Carrying DVS state only changes transition timing/counts; at the
    // paper's µs-scale overheads the energy impact is tiny.
    let s = setup();
    let fs = frames(&s, 30, 99);
    for scheme in Scheme::MANAGED {
        let sim = s.simulator(false);
        let mut policy = s.policy(scheme);
        let cold = run_stream(&sim, policy.as_mut(), &fs, false)
            .expect("stream runs")
            .total_energy();
        let warm = run_stream(&sim, policy.as_mut(), &fs, true)
            .expect("stream runs")
            .total_energy();
        let rel = (warm - cold).abs() / cold;
        assert!(
            rel < 0.01,
            "{}: warm/cold energy diverged by {:.3}%",
            scheme.name(),
            rel * 100.0
        );
    }
}

#[test]
fn stream_determinism() {
    let s = setup();
    let fs = frames(&s, 8, 5);
    let sim = s.simulator(false);
    let mut p1 = s.policy(Scheme::As);
    let a = run_stream(&sim, p1.as_mut(), &fs, true).expect("stream runs");
    let mut p2 = s.policy(Scheme::As);
    let b = run_stream(&sim, p2.as_mut(), &fs, true).expect("stream runs");
    assert_eq!(a.total_energy(), b.total_energy());
    assert_eq!(a.frame_finish, b.frame_finish);
    assert_eq!(a.speed_changes(), b.speed_changes());
}
