//! Snapshot tests for `pas check` over the committed fixture corpus.
//!
//! Every file under `tests/fixtures/invalid/` must be rejected with the
//! exact diagnostic codes pinned here (the codes are a public, stable
//! contract — renumbering one is a breaking change), and every file under
//! `tests/fixtures/valid/` must pass cleanly even with `--deny-warnings`.

use std::path::PathBuf;

fn fixture(kind: &str, name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(kind)
        .join(name)
        .to_str()
        .expect("utf-8 path")
        .to_string()
}

fn check(extra: &[&str]) -> Result<String, String> {
    let mut argv: Vec<String> = vec!["check".into()];
    argv.extend(extra.iter().map(|s| s.to_string()));
    pas_cli::run(&argv)
}

/// Extracts the `PAS0xxx` codes from a rendered JSON report, in order.
fn codes_of(report: &str) -> Vec<String> {
    let doc: serde::Value = serde_json::from_str(report).expect("JSON report");
    doc.get("diagnostics")
        .and_then(|d| d.as_array())
        .expect("diagnostics array")
        .iter()
        .map(|d| {
            d.get("code")
                .and_then(|c| c.as_str())
                .expect("code string")
                .to_string()
        })
        .collect()
}

/// Every invalid fixture is rejected, with exactly these codes.
#[test]
fn invalid_fixtures_pin_their_codes() {
    let expected: &[(&str, &[&str])] = &[
        ("graph_empty.json", &["PAS0001"]),
        ("graph_dangling_edge.json", &["PAS0002"]),
        ("graph_asymmetric.json", &["PAS0003", "PAS0013"]),
        ("graph_self_loop.json", &["PAS0004"]),
        ("graph_duplicate_edge.json", &["PAS0005"]),
        ("graph_bad_times.json", &["PAS0006"]),
        ("graph_or_arity.json", &["PAS0007"]),
        ("graph_prob_range.json", &["PAS0008", "PAS0008"]),
        ("graph_prob_sum.json", &["PAS0009"]),
        ("graph_cycle.json", &["PAS0010", "PAS0012", "PAS0012"]),
        ("graph_seriality.json", &["PAS0011"]),
        ("platform_empty.json", &["PAS0102"]),
        ("platform_nonmonotone.json", &["PAS0103"]),
        ("fault_prob_range.json", &["PAS0201"]),
        ("fault_overrun_factor.json", &["PAS0202"]),
        ("fault_stall.json", &["PAS0203"]),
    ];
    for (name, want) in expected {
        let path = fixture("invalid", name);
        let err =
            check(&[&path, "--format", "json"]).expect_err(&format!("{name} must be rejected"));
        let got = codes_of(&err);
        assert_eq!(&got, want, "{name}: {err}");
    }
    // The table above covers the whole directory — a fixture added without
    // a pinned expectation fails here.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("invalid");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    on_disk.sort();
    let mut pinned: Vec<String> = expected.iter().map(|(n, _)| n.to_string()).collect();
    pinned.sort();
    assert_eq!(on_disk, pinned, "every invalid fixture needs a pinned code");
}

/// The human rendering pins a few exact messages (they are part of the
/// diagnostic contract too — downstream tooling greps for them).
#[test]
fn invalid_fixtures_pin_key_messages() {
    let cases: &[(&str, &str)] = &[
        ("graph_empty.json", "graph has no nodes"),
        (
            "graph_bad_times.json",
            "execution times must satisfy 0 < acet <= wcet and be finite (wcet = 5, acet = 9)",
        ),
        (
            "graph_prob_sum.json",
            "branch probabilities sum to 0.900000, expected 1 (tolerance 0.000001)",
        ),
        (
            "graph_seriality.json",
            "OR-seriality violation: a section flows into two OR nodes ('o1' and 'o2')",
        ),
        (
            "fault_prob_range.json",
            "overrun_prob = 1.5 is not a probability in [0, 1]",
        ),
        (
            "platform_nonmonotone.json",
            "frequencies must strictly increase and voltages must not decrease",
        ),
    ];
    for (name, needle) in cases {
        let path = fixture("invalid", name);
        let err = check(&[&path]).expect_err(&format!("{name} must be rejected"));
        assert!(err.contains(needle), "{name}: wanted {needle:?} in {err}");
        assert!(
            err.contains("error[PAS0"),
            "{name}: severity prefix in {err}"
        );
    }
}

/// Valid fixtures pass, even under `--deny-warnings`.
#[test]
fn valid_fixtures_pass_clean() {
    for name in [
        "graph_tiny.json",
        "platform_xscale.json",
        "fault_overruns.json",
    ] {
        let path = fixture("valid", name);
        let out =
            check(&[&path, "--deny-warnings"]).unwrap_or_else(|e| panic!("{name} must pass: {e}"));
        assert!(out.contains("check passed"), "{name}: {out}");
    }
    // And the whole corpus at once: workload + platform + fault plan in a
    // single invocation, checked against each other.
    let g = fixture("valid", "graph_tiny.json");
    let m = fixture("valid", "platform_xscale.json");
    let f = fixture("valid", "fault_overruns.json");
    let out = check(&[&g, &m, &f, "--deny-warnings"]).expect("corpus passes");
    assert!(out.contains("feasibility:"), "{out}");
}

/// An explicit deadline that cannot be met is a PAS0301 error, and the
/// message names the worst OR-path.
#[test]
fn infeasible_deadline_is_pas0301() {
    let g = fixture("valid", "graph_tiny.json");
    let err = check(&[&g, "--deadline", "1.0", "--format", "json"])
        .expect_err("1 ms deadline is impossible");
    assert_eq!(codes_of(&err), vec!["PAS0301"]);
    let err = check(&[&g, "--deadline", "1.0"]).expect_err("same in human form");
    assert!(err.contains("statically infeasible"), "{err}");
}

/// The built-in workloads and platforms are clean — `pas check` with no
/// sources vets the default `--app`/`--model` pair.
#[test]
fn builtins_are_clean() {
    for app in ["synthetic", "atr", "video"] {
        for model in ["transmeta", "xscale", "continuous:0.2"] {
            let out = check(&[app, model, "--deny-warnings"])
                .unwrap_or_else(|e| panic!("{app} on {model}: {e}"));
            assert!(out.contains("check passed"), "{app} on {model}: {out}");
        }
    }
    let out = check(&["--deny-warnings"]).expect("default pair is clean");
    assert!(out.contains("feasibility: synthetic on transmeta"), "{out}");
}

/// Broken inputs that fail classification or parsing surface one-line
/// errors (not panics).
#[test]
fn unclassifiable_and_corrupt_sources_error() {
    let dir = std::env::temp_dir().join("pas_check_fixture_tests");
    let _ = std::fs::create_dir_all(&dir);
    let mystery = dir.join("mystery.json");
    std::fs::write(&mystery, "{\"foo\": 1}").expect("write fixture");
    let err = check(&[mystery.to_str().expect("utf-8")]).expect_err("unclassifiable");
    assert!(err.contains("cannot classify source"), "{err}");
    let corrupt = dir.join("corrupt.json");
    std::fs::write(&corrupt, "{not json").expect("write fixture");
    let err = check(&[corrupt.to_str().expect("utf-8")]).expect_err("corrupt");
    assert!(err.contains("parsing"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
