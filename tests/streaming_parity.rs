//! Streaming-sink parity and per-section attribution invariants.
//!
//! The streaming pipeline is only trustworthy if consuming the event
//! stream incrementally yields *exactly* what buffering it would: the
//! JSONL sink must be byte-for-byte identical to the buffered exporter,
//! and the sectioned ledger's slices must partition the engine's meter
//! total — globally and per program section — within the documented
//! 1e-9 tolerance, under every scheme, both paper platforms, and
//! arbitrary fault plans.

use pas_andor::core::{Scheme, Setup};
use pas_andor::obs::export::to_jsonl;
use pas_andor::obs::{EventLog, Fanout, JsonlSink, Observer, RingLog, SectionedLedger};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::{run_stream_observed, ExecTimeModel, FaultPlan, Realization};
use pas_andor::workloads::RandomAppParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn both_platforms() -> [ProcessorModel; 2] {
    [ProcessorModel::transmeta5400(), ProcessorModel::xscale()]
}

/// One observed run streaming into `observer`, mirroring `observed_run`
/// in `tests/obs_events.rs` but through the incremental path.
fn run_streaming(
    setup: &Setup,
    scheme: Scheme,
    real: &Realization,
    faults: Option<&pas_andor::sim::FaultSet>,
    observer: &mut dyn Observer,
) -> pas_andor::sim::RunResult {
    let mut policy = setup.policy(scheme);
    setup
        .simulator(false)
        .run_observed(policy.as_mut(), real, None, faults, Some(observer))
        .expect("observed run succeeds")
}

#[test]
fn streamed_jsonl_is_byte_identical_to_buffered_export() {
    for model in both_platforms() {
        let app = pas_andor::experiments::figures::atr_app();
        let setup = Setup::for_load(app, model, 2, 0.5).expect("feasible");
        let mut rng = StdRng::seed_from_u64(11);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in Scheme::ALL {
            // Buffered: record everything, then export.
            let mut log = EventLog::new();
            run_streaming(&setup, scheme, &real, None, &mut log);
            let buffered = to_jsonl(log.events());
            // Streamed: every event hits the sink as it is emitted.
            let mut sink = JsonlSink::new(Vec::new());
            run_streaming(&setup, scheme, &real, None, &mut sink);
            let streamed =
                String::from_utf8(sink.finish().expect("in-memory sink")).expect("utf-8");
            assert_eq!(
                streamed,
                buffered,
                "{}: stream/buffer divergence",
                scheme.name()
            );
        }
    }
}

#[test]
fn sectioned_ledger_partitions_energy_for_every_scheme_and_platform() {
    for model in both_platforms() {
        let app = pas_andor::experiments::figures::atr_app();
        let setup = Setup::for_load(app, model, 2, 0.5).expect("feasible");
        let mut rng = StdRng::seed_from_u64(23);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in Scheme::ALL {
            let mut ledger = SectionedLedger::new();
            let res = run_streaming(&setup, scheme, &real, None, &mut ledger);
            // verify() checks both invariants: total vs engine meter, and
            // slice sum vs total — each within 1e-9 relative tolerance.
            ledger
                .verify(res.total_energy())
                .unwrap_or_else(|m| panic!("{}: {m}", scheme.name()));
            // The ATR app's OR boundaries must actually split the stream.
            assert!(
                ledger.slices().len() > 1,
                "{}: no section boundaries observed",
                scheme.name()
            );
        }
    }
}

#[test]
fn ring_log_bounds_memory_while_counting_a_long_stream() {
    let app = pas_andor::experiments::figures::atr_app();
    let setup = Setup::for_load(app, ProcessorModel::xscale(), 2, 0.5).expect("feasible");
    let mut rng = StdRng::seed_from_u64(5);
    let etm = ExecTimeModel::paper_defaults();
    let frames: Vec<Realization> = (0..50).map(|_| setup.sample(&etm, &mut rng)).collect();
    let sim = setup.simulator(false);
    let mut policy = setup.policy(Scheme::Gss);
    let mut ring = RingLog::new(64);
    let mut ledger = SectionedLedger::new();
    let res = {
        let mut fan = Fanout::new().with(&mut ring).with(&mut ledger);
        run_stream_observed(&sim, policy.as_mut(), &frames, false, Some(&mut fan))
            .expect("stream runs")
    };
    assert!(ring.seen() > 64, "stream long enough to wrap the ring");
    assert_eq!(ring.len(), 64, "ring stays at capacity");
    assert_eq!(ring.peak_occupancy(), 64);
    // The ledger still accounts for the *whole* stream, not the window.
    ledger
        .verify(res.total_energy())
        .expect("ledger sums over all frames");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Streamed export parity and the sectioned-ledger partition hold on
    /// arbitrary applications and random fault plans, for all six
    /// schemes — faults inject recovery energy and retry events, which
    /// must land in the correct section slice like everything else.
    #[test]
    fn streaming_invariants_hold_under_random_fault_plans(
        app_seed in 0u64..10_000,
        real_seed in 0u64..10_000,
        xscale in 0u8..2,
        load in 0.3f64..0.8,
        overrun_prob in 0.0f64..0.6,
        overrun_factor in 1.05f64..2.0,
        speed_fail_prob in 0.0f64..0.4,
        stall_prob in 0.0f64..0.3,
        stall_ms in 0.1f64..3.0,
        fault_seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let model = if xscale == 1 {
            ProcessorModel::xscale()
        } else {
            ProcessorModel::transmeta5400()
        };
        let setup = Setup::for_load(app, model, 2, load).expect("feasible");
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let plan = FaultPlan {
            overrun_prob,
            overrun_factor,
            speed_fail_prob,
            stall_prob,
            stall_ms,
            seed: fault_seed,
        };
        plan.validate().expect("plan in range");
        let faults = plan.realize(&setup.graph, real_seed);
        for scheme in Scheme::ALL {
            let mut log = EventLog::new();
            run_streaming(&setup, scheme, &real, Some(&faults), &mut log);
            let buffered = to_jsonl(log.events());
            let mut sink = JsonlSink::new(Vec::new());
            let mut ledger = SectionedLedger::new();
            let res = {
                let mut fan = Fanout::new().with(&mut sink).with(&mut ledger);
                run_streaming(&setup, scheme, &real, Some(&faults), &mut fan)
            };
            let streamed =
                String::from_utf8(sink.finish().expect("in-memory sink")).expect("utf-8");
            prop_assert_eq!(&streamed, &buffered, "{}: stream/buffer divergence", scheme.name());
            ledger
                .verify(res.total_energy())
                .unwrap_or_else(|m| panic!("{}: {m}", scheme.name()));
        }
    }

    /// Multi-frame parity: streaming N frames through one sink equals
    /// the concatenation of N buffered single-frame exports, and one
    /// ledger accounts for the whole stream.
    #[test]
    fn multi_frame_stream_equals_concatenated_frames(
        real_seed in 0u64..5_000,
        n_frames in 1usize..6,
    ) {
        let app = pas_andor::experiments::figures::atr_app();
        let setup = Setup::for_load(app, ProcessorModel::xscale(), 2, 0.5).expect("feasible");
        let mut rng = StdRng::seed_from_u64(real_seed);
        let etm = ExecTimeModel::paper_defaults();
        let frames: Vec<Realization> =
            (0..n_frames).map(|_| setup.sample(&etm, &mut rng)).collect();
        let sim = setup.simulator(false);
        let mut policy = setup.policy(Scheme::Ss2);
        let mut sink = JsonlSink::new(Vec::new());
        let mut ledger = SectionedLedger::new();
        let res = {
            let mut fan = Fanout::new().with(&mut sink).with(&mut ledger);
            run_stream_observed(&sim, policy.as_mut(), &frames, false, Some(&mut fan))
                .expect("stream runs")
        };
        let mut buffered = String::new();
        for real in &frames {
            let mut log = EventLog::new();
            run_streaming(&setup, Scheme::Ss2, real, None, &mut log);
            buffered.push_str(&to_jsonl(log.events()));
        }
        let streamed =
            String::from_utf8(sink.finish().expect("in-memory sink")).expect("utf-8");
        prop_assert_eq!(streamed, buffered);
        ledger.verify(res.total_energy()).expect("stream-wide ledger");
    }
}
