//! Concurrency property for the structured logger: many threads
//! emitting through one shared sink never tear a line — every byte run
//! between newlines parses as a complete JSON record with the full
//! required field set, and no record goes missing.

use pas_obs::log;
use serde::Value;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink that appends into a shared buffer, so the test can
/// inspect exactly what the logger wrote after shutdown.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn concurrent_writers_never_tear_a_line() {
    const THREADS: usize = 8;
    const EMITS: usize = 200;

    let _session = log::exclusive();
    let buf = Arc::new(Mutex::new(Vec::new()));
    log::init(
        Some(Box::new(SharedBuf(Arc::clone(&buf)))),
        log::Level::Debug,
        log::DEFAULT_RING_CAP,
    );

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let _corr = log::with_corr(&format!("writer-{t}"));
                for i in 0..EMITS {
                    log::emit(
                        log::Level::Info,
                        "test.concurrency",
                        "interleaved emit",
                        vec![
                            ("thread", Value::UInt(t as u64)),
                            ("i", Value::UInt(i as u64)),
                        ],
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }
    log::shutdown();

    let bytes = buf.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let text = String::from_utf8(bytes).expect("log output is UTF-8");
    assert!(text.ends_with('\n'), "output ends mid-line");

    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), THREADS * EMITS, "a record went missing");

    let mut seqs = Vec::with_capacity(lines.len());
    for line in &lines {
        let v: Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("torn line {line:?}: {e}"));
        for key in ["seq", "t_wall_ms", "t_mono_ms", "level", "target", "msg"] {
            assert!(v.get(key).is_some(), "missing {key} in {line}");
        }
        assert_eq!(
            v.get("target").and_then(Value::as_str),
            Some("test.concurrency")
        );
        let corr = v.get("corr_id").and_then(Value::as_str).expect("corr_id");
        assert!(corr.starts_with("writer-"), "{corr}");
        seqs.push(v.get("seq").and_then(Value::as_u64).expect("seq"));
    }
    // Sequence numbers are allocated under the logger mutex: strictly
    // increasing on the wire, gap-free once sorted.
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "out-of-order seqs");
    assert_eq!(seqs[0], 1);
    assert_eq!(*seqs.last().expect("nonempty"), (THREADS * EMITS) as u64);
}
