//! Cross-crate observability invariants.
//!
//! The event stream is only trustworthy if it is *complete*: every joule
//! the engine meters must be attributable to some event, and every
//! counter the engine keeps must be recomputable from the stream alone.
//! These tests enforce that over all six schemes, both paper platforms,
//! random applications and random fault plans — not just the golden
//! workloads.

use pas_andor::core::{Scheme, Setup};
use pas_andor::obs::{EnergyLedger, EventKind, EventLog, MetricsRegistry};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::{trace_from_events, ExecTimeModel, FaultPlan, RunResult, SimEvent};
use pas_andor::workloads::RandomAppParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one scheme under an [`EventLog`] observer, returning the engine
/// result alongside the recorded stream.
fn observed_run(
    setup: &Setup,
    scheme: Scheme,
    real: &pas_andor::sim::Realization,
    faults: Option<&pas_andor::sim::FaultSet>,
) -> (RunResult, Vec<SimEvent>) {
    let mut log = EventLog::new();
    let mut policy = setup.policy(scheme);
    let res = setup
        .simulator(true)
        .run_observed(policy.as_mut(), real, None, faults, Some(&mut log))
        .expect("observed run succeeds");
    (res, log.into_events())
}

/// Every invariant the stream must satisfy against the engine's own
/// accounting for one run.
fn check_stream(scheme: Scheme, res: &RunResult, events: &[SimEvent]) {
    // 1. The ledger attributes every joule: categories sum to the meter
    //    total within the documented tolerance.
    let ledger = EnergyLedger::from_events(events);
    ledger
        .verify(res.total_energy())
        .unwrap_or_else(|m| panic!("{}: {m}", scheme.name()));

    // 2. Event-derived speed-change counts match the engine's meters
    //    (recovery escalations included — the meter counts those too).
    let reg = MetricsRegistry::from_events(events);
    assert_eq!(
        reg.speed_changes(),
        res.energy.speed_changes(),
        "{}: event-derived speed changes diverge from the engine meter",
        scheme.name()
    );

    // 3. The schedule trace is a pure projection of the stream.
    let projected = trace_from_events(events);
    let trace = res.trace.as_ref().expect("tracing enabled");
    assert_eq!(&projected, trace, "{}: trace projection", scheme.name());

    // 4. Dispatches pair with completions one-to-one.
    assert_eq!(
        reg.counter("events.dispatch"),
        reg.counter("events.complete"),
        "{}: unbalanced dispatch/complete",
        scheme.name()
    );

    // 5. Event times are finite and within [0, finish ∨ horizon].
    let horizon = res.deadline.max(res.finish_time) + 1e-6;
    for ev in events {
        assert!(
            ev.time().is_finite() && ev.time() >= 0.0 && ev.time() <= horizon,
            "{}: event out of range at t={}: {ev:?}",
            scheme.name(),
            ev.time()
        );
    }
}

#[test]
fn atr_streams_reconcile_for_every_scheme_and_platform() {
    for model in [ProcessorModel::transmeta5400(), ProcessorModel::xscale()] {
        let app = pas_andor::experiments::figures::atr_app();
        let setup = Setup::for_load(app, model, 2, 0.5).expect("feasible");
        let mut rng = StdRng::seed_from_u64(7);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in Scheme::ALL {
            let (res, events) = observed_run(&setup, scheme, &real, None);
            check_stream(scheme, &res, &events);
            assert!(!events.is_empty());
        }
    }
}

#[test]
fn speculative_schemes_emit_speculation_updates() {
    let app = pas_andor::experiments::figures::atr_app();
    let setup = Setup::for_load(app, ProcessorModel::transmeta5400(), 2, 0.5).expect("feasible");
    let mut rng = StdRng::seed_from_u64(3);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    for (scheme, speculates) in [
        (Scheme::Ss1, true),
        (Scheme::As, true),
        (Scheme::Gss, false),
        (Scheme::Npm, false),
    ] {
        let (_, events) = observed_run(&setup, scheme, &real, None);
        let updates = events
            .iter()
            .filter(|e| e.kind() == EventKind::SpeculationUpdate)
            .count();
        assert_eq!(
            updates > 0,
            speculates,
            "{}: speculation events",
            scheme.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The ledger invariant and counter parity hold on arbitrary
    /// applications, platforms, loads and fault plans, for all six
    /// schemes. This is the release-mode guard for the invariant the
    /// engine asserts on every debug run.
    #[test]
    fn ledger_sums_to_total_energy_under_faults(
        app_seed in 0u64..10_000,
        real_seed in 0u64..10_000,
        xscale in 0u8..2,
        procs in 1usize..4,
        load in 0.2f64..0.9,
        overrun_prob in 0.0f64..0.6,
        overrun_factor in 1.05f64..2.0,
        speed_fail_prob in 0.0f64..0.4,
        stall_prob in 0.0f64..0.3,
        stall_ms in 0.1f64..3.0,
        fault_seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let model = if xscale == 1 {
            ProcessorModel::xscale()
        } else {
            ProcessorModel::transmeta5400()
        };
        let setup = Setup::for_load(app, model, procs, load).expect("feasible");
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        let plan = FaultPlan {
            overrun_prob,
            overrun_factor,
            speed_fail_prob,
            stall_prob,
            stall_ms,
            seed: fault_seed,
        };
        plan.validate().expect("plan in range");
        let faults = plan.realize(&setup.graph, real_seed);
        for scheme in Scheme::ALL {
            let (res, events) = observed_run(&setup, scheme, &real, Some(&faults));
            check_stream(scheme, &res, &events);
        }
    }

    /// Observation must never perturb the simulation: a run with an
    /// observer attached is numerically identical to one without.
    #[test]
    fn observers_do_not_perturb_the_run(
        app_seed in 0u64..5_000,
        real_seed in 0u64..5_000,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let setup = Setup::for_load(app, ProcessorModel::xscale(), 2, 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(real_seed);
        let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in Scheme::ALL {
            let bare = setup.run(scheme, &real).expect("run succeeds");
            let (observed, _) = observed_run(&setup, scheme, &real, None);
            prop_assert_eq!(bare.finish_time, observed.finish_time);
            prop_assert_eq!(bare.total_energy(), observed.total_energy());
            prop_assert_eq!(
                bare.energy.speed_changes(),
                observed.energy.speed_changes()
            );
        }
    }
}
