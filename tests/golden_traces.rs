//! Determinism regression: a fault-free seeded run of each of the six
//! schemes must produce a byte-identical schedule trace and energy
//! breakdown across refactors of the engine and policies.
//!
//! The golden files live in `tests/golden/`. To regenerate after an
//! *intentional* behavior change, run:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! and review the diff — any unexplained change is a regression in the
//! paired Monte-Carlo design (identical realizations must schedule
//! identically).

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::ProcessorModel;
use pas_andor::sim::ExecTimeModel;
use pas_andor::workloads::synthetic_app;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 0x60_1DE2;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn file_stem(scheme: Scheme) -> String {
    scheme
        .name()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Renders one run as stable JSON: trace plus the energy breakdown.
/// Floats print through Rust's shortest-round-trip `Display`, so equal
/// bits ⇔ equal text.
fn render(scheme: Scheme, setup: &Setup, real: &pas_andor::sim::Realization) -> String {
    let mut policy = setup.policy(scheme);
    let res = setup
        .simulator(true)
        .run(policy.as_mut(), real)
        .expect("fault-free golden run succeeds");
    let trace = res.trace.as_ref().expect("trace recording enabled");
    let entries = serde_json::to_string_pretty(trace).expect("trace serializes");
    format!(
        "{{\n  \"scheme\": \"{}\",\n  \"finish_time\": {},\n  \"missed_deadline\": {},\n  \
         \"busy_energy\": {},\n  \"idle_energy\": {},\n  \"transition_energy\": {},\n  \
         \"total_energy\": {},\n  \"speed_changes\": {},\n  \"trace\": {}\n}}\n",
        scheme.name(),
        res.finish_time,
        res.missed_deadline,
        res.energy.busy_energy(),
        res.energy.idle_energy(),
        res.energy.transition_energy(),
        res.total_energy(),
        res.energy.speed_changes(),
        entries
    )
}

#[test]
fn fault_free_traces_match_golden_files() {
    let app = synthetic_app().lower().expect("synthetic app lowers");
    let setup =
        Setup::for_load(app, ProcessorModel::transmeta5400(), 2, 0.6).expect("feasible setup");
    let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
    let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }

    let mut mismatches = Vec::new();
    for scheme in Scheme::ALL {
        let rendered = render(scheme, &setup, &real);
        let path = dir.join(format!("trace_{}.json", file_stem(scheme)));
        if update {
            std::fs::write(&path, &rendered).expect("write golden file");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test \
                 --test golden_traces to create it",
                path.display()
            )
        });
        if rendered != expected {
            mismatches.push(scheme.name().to_string());
        }
    }
    assert!(
        mismatches.is_empty(),
        "schedule traces diverged from golden files for: {} — if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff",
        mismatches.join(", ")
    );
}

/// The same seed must produce the same realization (guards the RNG and
/// sampler stack underneath the golden traces).
#[test]
fn golden_realization_is_stable() {
    let app = synthetic_app().lower().expect("synthetic app lowers");
    let setup =
        Setup::for_load(app, ProcessorModel::transmeta5400(), 2, 0.6).expect("feasible setup");
    let draw = || {
        let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
        setup.sample(&ExecTimeModel::paper_defaults(), &mut rng)
    };
    let a = draw();
    let b = draw();
    assert_eq!(a.scenario.choices, b.scenario.choices);
    assert_eq!(a.actual, b.actual);
}
