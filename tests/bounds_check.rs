//! End-to-end soundness of the symbolic bounds pass: every simulated
//! run — fault-free or fault-injected — must land inside the static
//! `[best, worst]` intervals `pas_analyze::analyze_bounds` derives, and
//! on a workload with no scheduling freedom (one processor, zero
//! overheads, a serial chain) the NPM interval endpoints must be
//! *achieved* exactly by the corner realizations.

use pas_andor::analyze::{analyze_bounds, BoundsAnalysis, BoundsConfig, FaultEnvelope};
use pas_andor::core::{Scheme, Setup};
use pas_andor::graph::{Scenario, Segment};
use pas_andor::power::{Overheads, ProcessorModel};
use pas_andor::sim::{ExecTimeModel, FaultPlan, Realization};
use pas_andor::workloads::synthetic_app;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Containment tolerance: the bounds are exact-arithmetic sound, so
/// this only absorbs float associativity between analyzer and engine.
const TOL: f64 = 1e-6;

fn scheme_bounds(ba: &BoundsAnalysis, scheme: Scheme) -> &pas_andor::analyze::SchemeBounds {
    ba.schemes
        .iter()
        .find(|s| s.scheme == scheme.name())
        .unwrap_or_else(|| panic!("no bounds entry for {}", scheme.name()))
}

/// 6 schemes x 2 platforms x 32 seeded realizations, each run fault-free
/// and under a fault plan whose envelope matches the faulty bounds:
/// simulated energy and makespan always within the static interval.
#[test]
fn simulated_runs_stay_inside_the_static_intervals() {
    let g = synthetic_app().lower().expect("synthetic lowers");
    let fault_plan = FaultPlan {
        overrun_prob: 0.3,
        overrun_factor: 1.4,
        speed_fail_prob: 0.2,
        stall_prob: 0.2,
        stall_ms: 1.5,
        seed: 11,
    };
    let envelope = FaultEnvelope::from_plan(&fault_plan).expect("plan injects");
    for model in [ProcessorModel::transmeta5400(), ProcessorModel::xscale()] {
        let setup = Setup::for_load(g.clone(), model, 2, 0.5).expect("feasible");
        let free = analyze_bounds(&setup, &BoundsConfig::default(), "synthetic");
        let faulty_cfg = BoundsConfig {
            fault: Some(envelope),
            ..BoundsConfig::default()
        };
        let faulty = analyze_bounds(&setup, &faulty_cfg, "synthetic");
        assert!(free.exact, "synthetic app should enumerate exactly");
        let etm = ExecTimeModel::paper_defaults();
        let mut rng = StdRng::seed_from_u64(0xB0B5);
        for rep in 0..32u64 {
            let real = setup.sample(&etm, &mut rng);
            let faults = fault_plan.realize(&setup.graph, rep);
            for scheme in Scheme::ALL {
                let sb = scheme_bounds(&free, scheme);
                let res = setup.run(scheme, &real).expect("fault-free run");
                assert!(
                    sb.energy.contains(res.total_energy(), TOL),
                    "{} rep {rep}: fault-free energy {} outside [{}, {}]",
                    scheme.name(),
                    res.total_energy(),
                    sb.energy.lo,
                    sb.energy.hi
                );
                assert!(
                    sb.makespan.contains(res.finish_time, TOL),
                    "{} rep {rep}: fault-free makespan {} outside [{}, {}]",
                    scheme.name(),
                    res.finish_time,
                    sb.makespan.lo,
                    sb.makespan.hi
                );
                let fb = scheme_bounds(&faulty, scheme);
                let fres = setup
                    .run_with_faults(scheme, &real, &faults)
                    .expect("faulty run");
                assert!(
                    fb.energy.contains(fres.total_energy(), TOL),
                    "{} rep {rep}: faulty energy {} outside [{}, {}]",
                    scheme.name(),
                    fres.total_energy(),
                    fb.energy.lo,
                    fb.energy.hi
                );
                assert!(
                    fb.makespan.contains(fres.finish_time, TOL),
                    "{} rep {rep}: faulty makespan {} outside [{}, {}]",
                    scheme.name(),
                    fres.finish_time,
                    fb.makespan.lo,
                    fb.makespan.hi
                );
                // The faulty interval is a superset: fault-free runs
                // must sit inside it too.
                assert!(
                    fb.energy.contains(res.total_energy(), TOL)
                        && fb.makespan.contains(res.finish_time, TOL),
                    "{} rep {rep}: fault-free run escapes the faulty interval",
                    scheme.name()
                );
            }
        }
        // Deterministic extremes: every scenario at full WCET.
        for (scenario, _) in setup.sections.enumerate_scenarios(&setup.graph) {
            let real = Realization::worst_case(&setup.graph, scenario);
            for scheme in Scheme::ALL {
                let sb = scheme_bounds(&free, scheme);
                let res = setup.run(scheme, &real).expect("worst-case run");
                assert!(
                    sb.energy.contains(res.total_energy(), TOL),
                    "{}: WCET energy {} outside [{}, {}]",
                    scheme.name(),
                    res.total_energy(),
                    sb.energy.lo,
                    sb.energy.hi
                );
                assert!(
                    sb.makespan.contains(res.finish_time, TOL),
                    "{}: WCET makespan {} outside [{}, {}]",
                    scheme.name(),
                    res.finish_time,
                    sb.makespan.lo,
                    sb.makespan.hi
                );
            }
        }
    }
}

/// Tightness oracle: a serial chain on one processor with zero
/// overheads leaves NPM no freedom at all, so the two corner
/// realizations (sampler floor, full WCET) must land *exactly* on the
/// interval endpoints — the intervals are tight, not merely sound.
#[test]
fn npm_interval_endpoints_are_achieved_on_a_serial_chain() {
    let app = Segment::seq([Segment::task("A", 10.0, 6.0), Segment::task("B", 6.0, 3.0)]);
    let g = app.lower().expect("chain lowers");
    let model = ProcessorModel::continuous(0.05).expect("valid");
    let setup =
        Setup::with_deadline_and_overheads(g, model, 1, 40.0, Overheads::none()).expect("feasible");
    let cfg = BoundsConfig::default();
    let ba = analyze_bounds(&setup, &cfg, "chain");
    assert!(ba.exact && ba.paths == 1, "a chain has one OR-path");

    let scenario = Scenario {
        choices: Vec::new(),
    };
    // The sampler's exact per-task lower clip (see ExecTimeModel::sample).
    let floor: Vec<f64> = setup
        .graph
        .nodes()
        .iter()
        .map(|n| {
            if n.kind.is_computation() {
                (cfg.min_exec_fraction * n.kind.wcet())
                    .min(n.kind.acet())
                    .max(n.kind.wcet() * 1e-12)
                    .min(n.kind.wcet())
            } else {
                0.0
            }
        })
        .collect();
    let lo_real = Realization {
        scenario: scenario.clone(),
        actual: floor,
    };
    let hi_real = Realization::worst_case(&setup.graph, scenario);

    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
    let npm = scheme_bounds(&ba, Scheme::Npm);
    let lo_res = setup.run(Scheme::Npm, &lo_real).expect("floor run");
    let hi_res = setup.run(Scheme::Npm, &hi_real).expect("wcet run");
    assert!(
        close(lo_res.total_energy(), npm.energy.lo),
        "NPM lower energy endpoint not achieved: sim {} vs bound {}",
        lo_res.total_energy(),
        npm.energy.lo
    );
    assert!(
        close(hi_res.total_energy(), npm.energy.hi),
        "NPM upper energy endpoint not achieved: sim {} vs bound {}",
        hi_res.total_energy(),
        npm.energy.hi
    );
    assert!(
        close(lo_res.finish_time, npm.makespan.lo),
        "NPM lower makespan endpoint not achieved: sim {} vs bound {}",
        lo_res.finish_time,
        npm.makespan.lo
    );
    assert!(
        close(hi_res.finish_time, npm.makespan.hi),
        "NPM upper makespan endpoint not achieved: sim {} vs bound {}",
        hi_res.finish_time,
        npm.makespan.hi
    );

    // The managed schemes have real freedom (they may slow down), so
    // their intervals merely contain the same corner runs.
    for scheme in Scheme::ALL {
        let sb = scheme_bounds(&ba, scheme);
        for real in [&lo_real, &hi_real] {
            let res = setup.run(scheme, real).expect("corner run");
            assert!(
                sb.energy.contains(res.total_energy(), TOL),
                "{}: corner energy {} outside [{}, {}]",
                scheme.name(),
                res.total_energy(),
                sb.energy.lo,
                sb.energy.hi
            );
            assert!(
                sb.makespan.contains(res.finish_time, TOL),
                "{}: corner makespan {} outside [{}, {}]",
                scheme.name(),
                res.finish_time,
                sb.makespan.lo,
                sb.makespan.hi
            );
        }
    }
}
