//! The user-facing references must track their catalogs: every
//! `PAS0xxx` code appears exactly once in `docs/diagnostics.md` (its
//! table row) with its severity label on the same line, and every
//! profiler span name and pre-seeded service counter appears exactly
//! once in `docs/observability.md` — so adding a code or an instrument
//! without documenting it, or documenting it twice, fails the build.

use pas_andor::analyze::Code;
use std::path::PathBuf;

fn doc(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("docs")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {} ({e})", path.display()))
}

#[test]
fn every_diagnostic_code_is_documented_exactly_once() {
    let text = doc("diagnostics.md");
    for code in Code::ALL {
        let needle = code.as_str();
        let count = text.matches(needle).count();
        assert_eq!(
            count, 1,
            "{needle} must appear exactly once in docs/diagnostics.md \
             (found {count} occurrences)"
        );
    }
}

#[test]
fn documented_rows_carry_the_catalog_severity() {
    let text = doc("diagnostics.md");
    for code in Code::ALL {
        let line = text
            .lines()
            .find(|l| l.contains(code.as_str()))
            .unwrap_or_else(|| panic!("{} missing from docs/diagnostics.md", code.as_str()));
        let label = code.severity().label();
        assert!(
            line.contains(&format!("| {label} |")),
            "row for {} must carry severity '{label}': {line}",
            code.as_str()
        );
    }
}

#[test]
fn algorithms_doc_covers_symbolic_bounds() {
    let text = doc("algorithms.md");
    assert!(
        text.contains("## Symbolic energy bounds"),
        "docs/algorithms.md must carry the symbolic bounds section"
    );
    // The section must state the three load-bearing pieces of the
    // semantics: the OR join rule, the exact-enumeration threshold with
    // its DAG fallback, and the deadline-cap premise.
    for term in [
        "OR join rule",
        "4096",
        "DAG join",
        "PAS0602",
        "PAS0603",
        "PAS0605",
        "witness",
        "Deadline premise",
    ] {
        assert!(
            text.contains(term),
            "docs/algorithms.md symbolic-bounds section must mention {term}"
        );
    }
    // The threshold named in prose is the one the analyzer uses.
    assert_eq!(pas_andor::analyze::ENUMERATION_THRESHOLD, 4096);
    // And diagnostics.md links into the section.
    assert!(
        doc("diagnostics.md").contains("algorithms.md#symbolic-energy-bounds"),
        "docs/diagnostics.md must link to the symbolic bounds section"
    );
}

#[test]
fn schemas_doc_covers_every_on_disk_contract() {
    let text = doc("schemas.md");
    for section in [
        "Workload",
        "Platform model",
        "Fault plan",
        "Plan artifact",
        "Bench report",
        "Metrics CSV",
        "Event stream",
        "Crash report",
    ] {
        assert!(
            text.contains(section),
            "docs/schemas.md must document the {section} format"
        );
    }
    // The plan artifact section must track the current schema version.
    assert!(
        text.contains(&format!("`{}`", pas_andor::core::PLAN_SCHEMA_VERSION)),
        "docs/schemas.md must state the current plan schema version"
    );
    // So must the crash-report section, along with its full key set.
    assert!(
        text.contains(&format!(
            "`pas_serve::CRASH_SCHEMA_VERSION`, currently `{}`",
            pas_serve::CRASH_SCHEMA_VERSION
        )),
        "docs/schemas.md must state the current crash-report schema version"
    );
    for key in [
        "crash_schema",
        "\"trigger\"",
        "\"corr_id\"",
        "\"request\"",
        "\"t_wall_ms\"",
        "\"events\"",
        "\"log_tail\"",
        "\"counters\"",
        "\"gauges\"",
    ] {
        assert!(
            text.contains(key),
            "docs/schemas.md must document the crash-report key {key}"
        );
    }
}

#[test]
fn every_span_name_is_documented_exactly_once() {
    let text = doc("observability.md");
    for name in pas_andor::obs::profile::names::ALL {
        let count = text.matches(name).count();
        assert_eq!(
            count, 1,
            "span `{name}` must appear exactly once in docs/observability.md \
             (found {count} occurrences)"
        );
    }
}

#[test]
fn every_pre_seeded_serve_counter_is_documented_exactly_once() {
    let text = doc("observability.md");
    for name in pas_serve::telemetry::PRE_SEEDED_COUNTERS {
        let count = text.matches(name).count();
        assert_eq!(
            count, 1,
            "counter `{name}` must appear exactly once in docs/observability.md \
             (found {count} occurrences)"
        );
    }
}

#[test]
fn observability_doc_states_the_telemetry_and_exposition_contract() {
    let text = doc("observability.md");
    // The latency surface: every stable kind and stage must be named,
    // as must the cache split and the summary quantiles.
    for kind in pas_serve::telemetry::LATENCY_KINDS {
        assert!(
            text.contains(&format!("`{kind}`")),
            "docs/observability.md must name latency kind {kind}"
        );
    }
    for stage in pas_serve::telemetry::LATENCY_STAGES {
        assert!(
            text.contains(&format!("**{stage}**")),
            "docs/observability.md must define latency stage {stage}"
        );
    }
    for term in [
        "serve.latency.<kind>.<stage>",
        ".hit",
        ".miss",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "text/plain; version=0.0.4",
        "# TYPE",
        "# HELP",
        "serve_latency_sum",
        "serve_latency_count",
        "quantile",
        "NaN",
        "--profile",
        "--profile-out",
        "chrome://tracing",
        "auto-<seq>",
    ] {
        assert!(
            text.contains(term),
            "docs/observability.md must document {term}"
        );
    }
    // Cross-links both ways: the service doc points at the catalog and
    // the catalog points back at the wire protocol.
    assert!(
        text.contains("service.md"),
        "docs/observability.md must link back to docs/service.md"
    );
    assert!(
        doc("service.md").contains("observability.md"),
        "docs/service.md must link to docs/observability.md"
    );
}

#[test]
fn observability_doc_covers_the_log_and_timeline_surface() {
    let text = doc("observability.md");
    // Every structured-log record field is documented exactly once (its
    // table row), mirroring the span-name and counter gates.
    for field in [
        "`seq`",
        "`t_wall_ms`",
        "`t_mono_ms`",
        "`level`",
        "`target`",
        "`msg`",
        "`corr_id`",
        "`fields`",
    ] {
        let count = text.matches(field).count();
        assert_eq!(
            count, 1,
            "log field {field} must appear exactly once in docs/observability.md \
             (found {count} occurrences)"
        );
    }
    for term in [
        "--log FILE|stderr",
        "--log-level",
        "--trace-out",
        "--crash-dir",
        "\"trace\": true",
        "{name, start_ms, dur_ms}",
        "serve_build_info",
    ] {
        assert!(
            text.contains(term),
            "docs/observability.md must document {term}"
        );
    }
}

#[test]
fn service_doc_covers_the_wire_contract() {
    let text = doc("service.md");
    // Every response status and request kind the daemon speaks must be
    // documented, as must the degradation vocabulary.
    for term in [
        "`ok`",
        "`error`",
        "`shed`",
        "`timeout`",
        "`panic`",
        "retry_after_ms",
        "stale: true",
        "Failure-mode table",
        "newline-delimited JSON",
        "`metrics` body",
        "auto-<seq>",
        "\"trace\": true",
        "`timeline`",
        "--log FILE|stderr",
        "--log-level",
        "--trace-out",
        "--crash-dir",
        "`crashes`",
        "`last_path`",
    ] {
        assert!(text.contains(term), "docs/service.md must document {term}");
    }
    // The service diagnostics live in the PAS05xx range; the doc must
    // reference each one (the full rows live in diagnostics.md).
    for code in Code::ALL {
        let name = code.as_str();
        if name.starts_with("PAS05") {
            assert!(text.contains(name), "docs/service.md must mention {name}");
        }
    }
}

#[test]
fn simulator_doc_keeps_its_contract_sections() {
    let text = doc("simulator.md");
    // Every section of the engine/batch/determinism writeup must exist
    // exactly once — duplicating a heading (or renaming one away) fails.
    for heading in [
        "# The simulation engine",
        "## Engine architecture",
        "### The dispatch loop",
        "### Policy hooks",
        "### Fault containment",
        "## Batched Monte-Carlo engine",
        "### Structure-of-arrays layout",
        "## Determinism contract",
        "### Seeding contract",
        "### Section-energy attribution",
        "## Observability sampling",
        "## Distribution summaries",
    ] {
        let count = text.lines().filter(|l| l.trim_end() == heading).count();
        assert_eq!(
            count, 1,
            "heading `{heading}` must appear exactly once in docs/simulator.md \
             (found {count} occurrences)"
        );
    }
    // The contract's load-bearing vocabulary: the seeding function, the
    // reuse-safety hook, the slicing parameter and the sampling knob.
    for term in [
        "bit-identical",
        "realization_seed",
        "begin_run",
        "start_index",
        "observe_stride",
        "keep_results",
        "tests/batch_parity.rs",
    ] {
        assert!(text.contains(term), "docs/simulator.md must mention {term}");
    }
    // Cross-link graph: the simulator doc points at the observability
    // catalog, the paper mapping and the wire protocol; each of those
    // (plus DESIGN.md) points back.
    for target in ["observability.md", "paper-mapping.md", "service.md"] {
        assert!(
            text.contains(target),
            "docs/simulator.md must link to docs/{target}"
        );
    }
    assert!(
        doc("observability.md").contains("simulator.md"),
        "docs/observability.md must link to docs/simulator.md"
    );
    assert!(
        doc("service.md").contains("simulator.md"),
        "docs/service.md must link to docs/simulator.md"
    );
    let design =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("DESIGN.md"))
            .expect("DESIGN.md");
    assert!(
        design.contains("docs/simulator.md"),
        "DESIGN.md must link to docs/simulator.md"
    );
}

#[test]
fn paper_mapping_covers_the_distribution_metrics() {
    let text = doc("paper-mapping.md");
    let heading = "## Distribution metrics beyond the paper's means";
    let count = text.lines().filter(|l| l.trim_end() == heading).count();
    assert_eq!(
        count, 1,
        "`{heading}` must appear exactly once in docs/paper-mapping.md"
    );
    // The section must place each distribution metric relative to the
    // paper's mean-only figures and point at the protocol and engine.
    for term in [
        "p50/p95/p99/max",
        "miss rate ± 95% CI",
        "per-section energy quantiles",
        "simulator.md",
        "E7",
    ] {
        assert!(
            text.contains(term),
            "docs/paper-mapping.md distribution section must mention {term}"
        );
    }
    let experiments =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("EXPERIMENTS.md"))
            .expect("EXPERIMENTS.md");
    assert!(
        experiments.contains("### E7"),
        "EXPERIMENTS.md must carry the E7 batch-sweep protocol"
    );
}

#[test]
fn relative_links_between_docs_resolve() {
    // Every relative markdown link in the docs (and the root documents
    // that index them) must point at a file that exists, so a rename or
    // deletion cannot silently strand readers.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![
        root.join("README.md"),
        root.join("DESIGN.md"),
        root.join("EXPERIMENTS.md"),
    ];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(
        files.len() > 5,
        "link checker found too few docs: {files:?}"
    );
    let mut broken = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("read {} ({e})", file.display()));
        let base = file.parent().expect("doc has a parent dir");
        let mut rest = text.as_str();
        while let Some(open) = rest.find("](") {
            rest = &rest[open + 2..];
            let Some(close) = rest.find(')') else { break };
            let target = &rest[..close];
            rest = &rest[close..];
            if target.is_empty()
                || target.starts_with('#')
                || target.contains("://")
                || target.contains(' ')
                || target.contains('\n')
            {
                continue; // anchor-only, external, or not a real link
            }
            let path_part = target.split('#').next().unwrap_or(target);
            if !base.join(path_part).exists() {
                broken.push(format!("{} -> {target}", file.display()));
            }
        }
    }
    assert!(broken.is_empty(), "broken relative doc links:\n{broken:?}");
}
