//! Cross-crate integration: serialization round trips, energy-accounting
//! identities, and end-to-end consistency through the facade crate.

use pas_andor::core::{OfflinePlan, Scheme, Setup};
use pas_andor::graph::{AndOrGraph, SectionGraph};
use pas_andor::power::{Overheads, ProcessorModel};
use pas_andor::sim::{ExecTimeModel, Realization};
use pas_andor::workloads::synthetic_app;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> Setup {
    Setup::for_load(
        synthetic_app().lower().unwrap(),
        ProcessorModel::transmeta5400(),
        2,
        0.5,
    )
    .unwrap()
}

#[test]
fn graph_json_round_trip_preserves_behavior() {
    let s = setup();
    let json = serde_json::to_string(&s.graph).unwrap();
    let graph2: AndOrGraph = serde_json::from_str(&json).unwrap();
    graph2.validate().unwrap();
    let s2 = Setup::new(graph2, ProcessorModel::transmeta5400(), 2, s.plan.deadline).unwrap();
    // Identical plans from identical graphs.
    assert_eq!(s.plan.worst_total, s2.plan.worst_total);
    assert_eq!(s.plan.avg_total, s2.plan.avg_total);
    assert_eq!(s.plan.lst, s2.plan.lst);
    // Identical runs on identical realizations.
    let mut rng = StdRng::seed_from_u64(11);
    let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    for scheme in Scheme::ALL {
        assert_eq!(
            s.run(scheme, &real).expect("run succeeds").total_energy(),
            s2.run(scheme, &real).expect("run succeeds").total_energy()
        );
    }
}

#[test]
fn plan_and_realization_serde_round_trips() {
    let s = setup();
    let plan_json = serde_json::to_string(&s.plan).unwrap();
    let plan2: OfflinePlan = serde_json::from_str(&plan_json).unwrap();
    assert_eq!(plan2.branch_worst, s.plan.branch_worst);
    assert_eq!(plan2.dispatch.per_section, s.plan.dispatch.per_section);

    let mut rng = StdRng::seed_from_u64(13);
    let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    let real_json = serde_json::to_string(&real).unwrap();
    let real2: Realization = serde_json::from_str(&real_json).unwrap();
    assert_eq!(real2.actual, real.actual);
    assert_eq!(
        s.run(Scheme::Gss, &real).expect("run succeeds").finish_time,
        s.run(Scheme::Gss, &real2)
            .expect("run succeeds")
            .finish_time
    );
}

#[test]
fn energy_accounting_identities() {
    let s = setup();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..50 {
        let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in Scheme::ALL {
            let res = s.run(scheme, &real).expect("run succeeds");
            // Total = busy + idle + transition.
            let sum = res.energy.busy_energy()
                + res.energy.idle_energy()
                + res.energy.transition_energy();
            assert!((res.total_energy() - sum).abs() < 1e-9);
            // Per-processor meters aggregate to the total.
            let agg: f64 = res.per_proc.iter().map(|m| m.total_energy()).sum();
            assert!((res.total_energy() - agg).abs() < 1e-9);
            // Each processor is accounted for the full horizon.
            let horizon = res.finish_time.max(res.deadline);
            for m in &res.per_proc {
                let covered = m.busy_time() + m.idle_time() + m.transition_time();
                assert!(
                    (covered - horizon).abs() < 1e-6,
                    "{scheme}: processor covered {covered} of horizon {horizon}"
                );
            }
        }
    }
}

#[test]
fn trace_is_consistent_with_dependencies_and_energy() {
    let s = setup();
    let mut rng = StdRng::seed_from_u64(23);
    let real = s.sample(&ExecTimeModel::paper_defaults(), &mut rng);
    let mut policy = s.policy(Scheme::Gss);
    let res = s
        .simulator(true)
        .run(policy.as_mut(), &real)
        .expect("run succeeds");
    let trace = res.trace.as_ref().unwrap();

    // Starts are globally ordered (the engine serializes dispatches).
    for w in trace.windows(2) {
        assert!(w[0].start <= w[1].start + 1e-12);
    }
    // No processor overlaps itself and speeds are legal levels.
    let levels: Vec<f64> = s
        .model
        .levels()
        .unwrap()
        .iter()
        .map(|l| l.freq_mhz / s.model.max_freq_mhz())
        .collect();
    for p in 0..s.plan.num_procs {
        let mut last_end = 0.0_f64;
        for e in trace.iter().filter(|e| e.proc == p) {
            assert!(e.start >= last_end - 1e-9, "processor {p} overlaps");
            assert!(e.end >= e.start);
            last_end = e.end;
            assert!(
                levels.iter().any(|l| (l - e.speed).abs() < 1e-9),
                "speed {} is not a level",
                e.speed
            );
        }
    }
    // Every traced task's predecessors finished before it started
    // (OR nodes excepted: they are not traced).
    let finish: std::collections::HashMap<_, _> = trace.iter().map(|e| (e.node, e.end)).collect();
    for e in trace {
        for &pred in &s.graph.node(e.node).preds {
            if let Some(&pf) = finish.get(&pred) {
                assert!(
                    pf <= e.start + 1e-9,
                    "task started before its predecessor finished"
                );
            }
        }
    }
}

#[test]
fn sections_and_dispatch_cover_every_active_node() {
    let s = setup();
    let sg = SectionGraph::build(&s.graph).unwrap();
    let mut rng = StdRng::seed_from_u64(29);
    for _ in 0..20 {
        let scenario = sg.sample_scenario(&s.graph, &mut rng);
        let active = sg.active_nodes(&s.graph, &scenario);
        // Every active computation node appears in the dispatch order of
        // its section.
        for &n in &active {
            if s.graph.node(n).kind.is_or() {
                continue;
            }
            let sec = sg.section_of(n).unwrap();
            assert!(
                s.plan.dispatch.per_section[sec.index()].contains(&n),
                "node missing from dispatch order"
            );
        }
    }
}

#[test]
fn overhead_accounting_behaves() {
    // Zero-overhead runs pay no transition time/energy; overheaded runs
    // pay exactly `transition_time · changes`, reserve slack accordingly
    // (so they never run *slower* than the free configuration), and still
    // meet every deadline.
    let app = synthetic_app().lower().unwrap();
    let free = Setup::for_load_with_overheads(
        app.clone(),
        ProcessorModel::xscale(),
        2,
        0.6,
        Overheads::none(),
    )
    .unwrap();
    let costly = Setup::for_load_with_overheads(
        app,
        ProcessorModel::xscale(),
        2,
        0.6,
        Overheads::new(300.0, 0.5).unwrap(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..30 {
        let real = free.sample(&ExecTimeModel::paper_defaults(), &mut rng);
        for scheme in [Scheme::Gss, Scheme::As] {
            let a = free.run(scheme, &real).expect("run succeeds");
            let b = costly.run(scheme, &real).expect("run succeeds");
            assert!(!a.missed_deadline && !b.missed_deadline);
            assert_eq!(a.energy.transition_time(), 0.0);
            assert!(
                (b.energy.transition_time() - 0.5 * b.energy.speed_changes() as f64).abs() < 1e-9
            );
            // (No per-run energy ordering holds in general: reserving
            // overhead shifts which tasks absorb the slack.)
        }
    }
}
