//! The batched Monte-Carlo engine's determinism contract, pinned at the
//! workspace level: per-seed results of `mp_sim::run_batch` are
//! bit-identical to the sequential engine — across every scheme, both
//! paper platforms, and arbitrary fault plans — and the batch
//! distribution summaries equal a fold over the sequential runs.
//!
//! The contract itself is documented in `docs/simulator.md`; these tests
//! are the enforcement the doc points at.

use pas_andor::core::{Scheme, Setup};
use pas_andor::power::{EnergyMeter, ProcessorModel};
use pas_andor::sim::{
    realization_seed, run_batch, BatchConfig, BatchDistribution, DeadlineStatus, ExecTimeModel,
    FaultPlan, Realization, RunResult,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flattens every field of a [`RunResult`] into bit patterns, so equality
/// means *bit-identical*, not merely approximately equal. `RunResult` has
/// no `PartialEq` on purpose — float comparison policy belongs to the
/// caller — so the tests spell the policy out: exact bits, all fields.
fn fingerprint(r: &RunResult) -> Vec<u64> {
    fn meter(m: &EnergyMeter, out: &mut Vec<u64>) {
        out.push(m.busy_energy().to_bits());
        out.push(m.idle_energy().to_bits());
        out.push(m.transition_energy().to_bits());
        out.push(m.busy_time().to_bits());
        out.push(m.idle_time().to_bits());
        out.push(m.transition_time().to_bits());
        out.push(m.speed_changes());
    }
    let mut v = vec![
        r.finish_time.to_bits(),
        r.deadline.to_bits(),
        u64::from(r.missed_deadline),
    ];
    match r.status {
        DeadlineStatus::Met { slack } => {
            v.push(0);
            v.push(slack.to_bits());
        }
        DeadlineStatus::Missed { by } => {
            v.push(1);
            v.push(by.to_bits());
        }
    }
    v.push(r.faults.overruns_injected);
    v.push(r.faults.speed_failures_injected);
    v.push(r.faults.stalls_injected);
    v.push(r.faults.overruns_detected);
    v.push(r.faults.recoveries);
    v.push(r.faults.recovery_energy.to_bits());
    meter(&r.energy, &mut v);
    v.push(r.per_proc.len() as u64);
    for m in &r.per_proc {
        meter(m, &mut v);
    }
    v.push(r.final_points.len() as u64);
    for p in &r.final_points {
        v.push(p.speed.to_bits());
        v.push(p.power.to_bits());
    }
    // Neither engine records a trace here (`record_trace` unset).
    v.push(r.trace.as_ref().map_or(0, |t| t.len() as u64));
    v
}

/// Runs the sequential reference for realization `index`: fresh RNG from
/// the published seeding contract, fresh policy, the historical
/// `run_full` entry point.
fn sequential_run(
    setup: &Setup,
    scheme: Scheme,
    etm: &ExecTimeModel,
    faults: Option<&FaultPlan>,
    base_seed: u64,
    index: u64,
) -> RunResult {
    let sim = setup.simulator(false);
    let mut rng = StdRng::seed_from_u64(realization_seed(base_seed, index));
    let real = Realization::sample(&setup.graph, &setup.sections, etm, &mut rng);
    let fs = faults.map(|plan| plan.realize(&setup.graph, index));
    let mut policy = setup.policy(scheme);
    sim.run_full(policy.as_mut(), &real, None, fs.as_ref())
        .expect("sequential run succeeds")
}

/// Every scheme on both paper platforms: batched results are bit-identical
/// to the sequential engine, fault-free.
#[test]
fn batch_is_bit_identical_across_schemes_and_platforms() {
    const RUNS: usize = 12;
    const SEED: u64 = 0xD1CE;
    let etm = ExecTimeModel::paper_defaults();
    for (platform, model) in [
        ("transmeta", ProcessorModel::transmeta5400()),
        ("xscale", ProcessorModel::xscale()),
    ] {
        let app = pas_andor::workloads::synthetic_app()
            .lower()
            .expect("lowers");
        let setup = Setup::for_load(app, model, 2, 0.5).expect("feasible");
        for scheme in Scheme::ALL {
            let sim = setup.simulator(false);
            let mut cfg = BatchConfig::new(RUNS, SEED);
            cfg.chunk = 5; // uneven chunking must not matter
            cfg.keep_results = true;
            let out =
                run_batch(&sim, &etm, None, || setup.policy(scheme), &cfg).expect("batch runs");
            let results = out.results.as_ref().expect("keep_results set");
            assert_eq!(results.len(), RUNS);
            for (i, batched) in results.iter().enumerate() {
                let seq = sequential_run(&setup, scheme, &etm, None, SEED, i as u64);
                assert_eq!(
                    fingerprint(batched),
                    fingerprint(&seq),
                    "{} on {platform}: realization {i} diverged",
                    scheme.name(),
                );
            }
        }
    }
}

/// Batch distribution summaries equal a fold over the sequential runs:
/// same histogram counts, bit-identical streaming moments, same miss
/// tally — because both fold realizations in index order.
#[test]
fn distributions_equal_a_sequential_fold() {
    const RUNS: usize = 48;
    const SEED: u64 = 0xF01D;
    let etm = ExecTimeModel::paper_defaults();
    let app = pas_andor::workloads::synthetic_app()
        .lower()
        .expect("lowers");
    let setup = Setup::for_load(app, ProcessorModel::transmeta5400(), 2, 0.5).expect("feasible");
    let scheme = Scheme::Gss;
    let sim = setup.simulator(false);
    let cfg = BatchConfig::new(RUNS, SEED);
    let out = run_batch(&sim, &etm, None, || setup.policy(scheme), &cfg).expect("batch runs");

    let e_hi = setup.plan.num_procs as f64 * setup.plan.deadline;
    let t_hi = setup.plan.deadline * 1.5;
    let batch_dist = BatchDistribution::from_output(&out, e_hi, t_hi, 128).expect("dist builds");

    let mut seq_dist =
        BatchDistribution::new(e_hi, t_hi, setup.sections.len(), 128).expect("dist builds");
    for i in 0..RUNS as u64 {
        let r = sequential_run(&setup, scheme, &etm, None, SEED, i);
        // The sequential engine has no per-section column; reuse the
        // batch's row, which the bit-identity test above already ties to
        // the same run.
        seq_dist.push(
            r.total_energy(),
            r.finish_time,
            r.missed_deadline,
            out.section_row(i as usize),
        );
    }
    assert_eq!(batch_dist.runs(), seq_dist.runs());
    assert_eq!(batch_dist.misses(), seq_dist.misses());
    for (a, b) in [
        (batch_dist.energy(), seq_dist.energy()),
        (batch_dist.makespan(), seq_dist.makespan()),
    ] {
        assert_eq!(a.histogram().counts(), b.histogram().counts());
        assert_eq!(a.summary().mean().to_bits(), b.summary().mean().to_bits());
        assert_eq!(a.max().to_bits(), b.max().to_bits());
    }
    for (a, b) in batch_dist.sections().iter().zip(seq_dist.sections()) {
        assert_eq!(a.histogram().counts(), b.histogram().counts());
        assert_eq!(a.summary().mean().to_bits(), b.summary().mean().to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fault plans cannot break the contract: injected overruns,
    /// speed failures and stalls are realized per global index, so the
    /// batched engine sees exactly the faults the sequential loop would.
    #[test]
    fn batch_matches_sequential_under_random_faults(
        scheme_idx in 0usize..Scheme::ALL.len(),
        xscale in 0usize..2,
        overrun_prob in 0.0f64..0.5,
        overrun_factor in 1.0f64..2.0,
        speed_fail_prob in 0.0f64..0.3,
        stall_prob in 0.0f64..0.3,
        stall_ms in 0.0f64..2.0,
        fault_seed in 0u64..1_000,
        base_seed in 0u64..1_000,
        chunk in 1usize..9,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let model = if xscale == 1 {
            ProcessorModel::xscale()
        } else {
            ProcessorModel::transmeta5400()
        };
        let plan = FaultPlan {
            overrun_prob,
            overrun_factor,
            speed_fail_prob,
            stall_prob,
            stall_ms,
            seed: fault_seed,
        };
        plan.validate().expect("generated plan is valid");
        let etm = ExecTimeModel::paper_defaults();
        let app = pas_andor::workloads::synthetic_app().lower().expect("lowers");
        let setup = Setup::for_load(app, model, 2, 0.5).expect("feasible");
        let sim = setup.simulator(false);
        let mut cfg = BatchConfig::new(8, base_seed);
        cfg.chunk = chunk;
        cfg.keep_results = true;
        let out = run_batch(&sim, &etm, Some(&plan), || setup.policy(scheme), &cfg)
            .expect("batch runs");
        let results = out.results.as_ref().expect("keep_results set");
        for (i, batched) in results.iter().enumerate() {
            let seq = sequential_run(&setup, scheme, &etm, Some(&plan), base_seed, i as u64);
            prop_assert_eq!(
                fingerprint(batched),
                fingerprint(&seq),
                "{} realization {} diverged (chunk {})",
                scheme.name(),
                i,
                chunk
            );
        }
    }
}
