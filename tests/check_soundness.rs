//! Soundness of the `pas check` feasibility verdict: a workload the
//! analyzer accepts must never miss its deadline in a fault-free run,
//! under any of the six schemes, on either builtin platform. This is the
//! end-to-end form of Theorem 1 — the static verifier's "feasible at
//! f_max" claim is only worth something if the on-line schemes actually
//! deliver it.

use pas_andor::analyze::{check_application, DeadlineSpec};
use pas_andor::core::{Scheme, Setup};
use pas_andor::power::{Overheads, ProcessorModel};
use pas_andor::sim::{ExecTimeModel, Realization};
use pas_andor::workloads::RandomAppParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn both_platforms() -> [(&'static str, ProcessorModel); 2] {
    [
        ("transmeta", ProcessorModel::transmeta5400()),
        ("xscale", ProcessorModel::xscale()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Accepted by the analyzer ⇒ no fault-free deadline miss, all six
    /// schemes × both platforms, on sampled and adversarial realizations.
    #[test]
    fn clean_check_implies_no_fault_free_miss(
        app_seed in 0u64..10_000,
        real_seed in 0u64..10_000,
        procs in 1usize..4,
        load in 0.2f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        for (name, model) in both_platforms() {
            let analysis = check_application(
                &app,
                "random app",
                &model,
                name,
                Overheads::paper_defaults(),
                procs,
                DeadlineSpec::Load(load),
            );
            prop_assert!(
                !analysis.report.has_errors(),
                "random valid app must be accepted on {name}: {}",
                analysis.report.render_human()
            );
            let feas = analysis.feasibility.as_ref().expect("accepted ⇒ summary");
            // The same load produces the same plan the runtime uses.
            let setup = Setup::for_load(app.clone(), model, procs, load)
                .expect("analyzer accepted ⇒ plan builds");
            prop_assert!(
                (feas.worst_case_ms - setup.plan.worst_total).abs()
                    <= 1e-9 * setup.plan.worst_total.max(1.0),
                "verifier Tw {} vs offline Tw {} on {name}",
                feas.worst_case_ms,
                setup.plan.worst_total
            );
            prop_assert!(
                (feas.deadline_ms - setup.plan.deadline).abs()
                    <= 1e-9 * setup.plan.deadline.max(1.0)
            );
            // Sampled realization.
            let mut rng = StdRng::seed_from_u64(real_seed);
            let real = setup.sample(&ExecTimeModel::paper_defaults(), &mut rng);
            for scheme in Scheme::ALL {
                let res = setup.run(scheme, &real).expect("run succeeds");
                prop_assert!(
                    !res.missed_deadline,
                    "{} missed on {name} (app_seed={app_seed}, load={load})",
                    scheme.name()
                );
            }
            // Adversarial: the worst case of a sampled scenario.
            let scenario = setup.sections.sample_scenario(&setup.graph, &mut rng);
            let worst = Realization::worst_case(&setup.graph, scenario);
            for scheme in Scheme::ALL {
                let res = setup.run(scheme, &worst).expect("run succeeds");
                prop_assert!(
                    !res.missed_deadline,
                    "{} missed worst case on {name} (app_seed={app_seed}, load={load})",
                    scheme.name()
                );
            }
        }
    }

    /// The analyzer and the offline plan agree on infeasibility: PAS0301
    /// fires exactly when `Setup::new` rejects the deadline.
    #[test]
    fn analyzer_agrees_with_offline_on_feasibility(
        app_seed in 0u64..10_000,
        deadline_frac in 0.25f64..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(app_seed);
        let app = RandomAppParams::default().generate(&mut rng).lower().unwrap();
        let model = ProcessorModel::transmeta5400();
        // Derive a deadline as a fraction of the true worst case.
        let probe = Setup::for_load(app.clone(), model.clone(), 2, 1.0)
            .expect("load 1.0 is always feasible");
        let deadline = probe.plan.worst_total * deadline_frac;
        let analysis = check_application(
            &app,
            "random app",
            &model,
            "transmeta",
            Overheads::paper_defaults(),
            2,
            DeadlineSpec::Deadline(deadline),
        );
        let offline = Setup::new(app.clone(), model, 2, deadline);
        prop_assert_eq!(
            analysis.report.has_errors(),
            offline.is_err(),
            "verifier and offline disagree at deadline {} (Tw {})",
            deadline,
            probe.plan.worst_total
        );
    }
}
